//! Per-file analysis context: the lexed token stream plus everything the
//! rules need to read it correctly — which tokens are *code* (not trivia),
//! which byte ranges are test-only (`#[cfg(test)]` / `#[test]` items),
//! and the parsed `// lint:allow(rule): reason` suppressions.

use crate::lexer::{lex, Token, TokenKind};

/// An inline suppression comment: `// lint:allow(rule-name): reason`.
///
/// A suppression applies to findings of `rule` on its own line (trailing
/// comment) or on the first code line after the comment block
/// (comment-above style — the reason may wrap onto continuation comment
/// lines). The reason is mandatory; a missing or empty reason makes the
/// suppression malformed — it suppresses nothing and is itself reported.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// 1-based line of the comment.
    pub line: u32,
    /// 1-based line of the first significant token after the comment —
    /// the code line a comment-above suppression covers.
    pub applies_line: u32,
    /// The rule name inside the parentheses.
    pub rule: String,
    /// The justification after the closing `):`, trimmed.
    pub reason: String,
}

/// A malformed suppression: the marker was present but unusable.
#[derive(Debug, Clone)]
pub struct MalformedSuppression {
    /// 1-based line of the comment.
    pub line: u32,
    /// What is wrong with it.
    pub problem: String,
}

/// One lexed source file, ready for rule matching.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, forward slashes.
    pub rel_path: String,
    /// The file contents.
    pub text: String,
    /// The full lossless token stream.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of significant (non-trivia) tokens.
    pub sig: Vec<usize>,
    /// Byte ranges covered by `#[cfg(test)]` / `#[test]` items.
    pub test_ranges: Vec<(usize, usize)>,
    /// Well-formed suppressions found in comments.
    pub suppressions: Vec<Suppression>,
    /// Malformed suppression markers (reported as findings).
    pub malformed: Vec<MalformedSuppression>,
    /// Whether the whole file is test code (under `tests/`, or a
    /// `testutil.rs` module included behind `#[cfg(test)]`).
    pub whole_file_test: bool,
}

impl SourceFile {
    /// Lexes `text` and computes the derived context.
    #[must_use]
    pub fn new(rel_path: String, text: String, whole_file_test: bool) -> Self {
        let tokens = lex(&text);
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                !matches!(
                    t.kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .map(|(i, _)| i)
            .collect();
        let test_ranges = find_test_ranges(&text, &tokens, &sig);
        let (suppressions, malformed) = parse_suppressions(&text, &tokens);
        Self {
            rel_path,
            text,
            tokens,
            sig,
            test_ranges,
            suppressions,
            malformed,
            whole_file_test,
        }
    }

    /// The text of the `i`-th *significant* token.
    #[must_use]
    pub fn sig_text(&self, i: usize) -> &str {
        self.tokens[self.sig[i]].text(&self.text)
    }

    /// The kind of the `i`-th significant token.
    #[must_use]
    pub fn sig_kind(&self, i: usize) -> TokenKind {
        self.tokens[self.sig[i]].kind
    }

    /// The 1-based line of the `i`-th significant token.
    #[must_use]
    pub fn sig_line(&self, i: usize) -> u32 {
        self.tokens[self.sig[i]].line
    }

    /// Whether the `i`-th significant token is inside test-only code.
    #[must_use]
    pub fn sig_in_test(&self, i: usize) -> bool {
        if self.whole_file_test {
            return true;
        }
        let start = self.tokens[self.sig[i]].start;
        self.test_ranges
            .iter()
            .any(|&(lo, hi)| start >= lo && start < hi)
    }

    /// Whether the `i`-th significant token sits inside a `use`
    /// declaration. Scans back to the previous `;` (statement boundary);
    /// braces do *not* stop the scan because `use a::{B, C};` groups put
    /// the imported names inside them.
    #[must_use]
    pub fn sig_in_use_decl(&self, i: usize) -> bool {
        for back in (0..i).rev() {
            match self.sig_text(back) {
                ";" => return false,
                "use" => return true,
                _ => {}
            }
            if i - back > 64 {
                return false;
            }
        }
        false
    }
}

/// Finds the byte ranges of items annotated `#[test]`, `#[cfg(test)]` or
/// a `cfg` combinator mentioning `test` (conservatively treating
/// `cfg(any(test, ...))` as test code; `cfg(not(test))` is *not* test
/// code). The range runs from the attribute's `#` to the item's closing
/// `}` (or its `;` for brace-less declarations).
fn find_test_ranges(text: &str, tokens: &[Token], sig: &[usize]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let sig_text = |i: usize| tokens[sig[i]].text(text);
    let mut i = 0usize;
    let mut pending_start: Option<usize> = None;
    while i < sig.len() {
        if sig_text(i) == "#" && i + 1 < sig.len() && sig_text(i + 1) == "[" {
            let attr_start = tokens[sig[i]].start;
            // Collect the attribute's identifiers up to the matching `]`.
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut idents: Vec<&str> = Vec::new();
            while j < sig.len() {
                match sig_text(j) {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    other => {
                        if tokens[sig[j]].kind == TokenKind::Ident {
                            idents.push(other);
                        }
                    }
                }
                j += 1;
            }
            let gates_test = idents.first() == Some(&"test")
                || (idents.contains(&"cfg")
                    && idents.contains(&"test")
                    && !idents.contains(&"not"));
            if gates_test && pending_start.is_none() {
                pending_start = Some(attr_start);
            }
            i = j + 1;
            continue;
        }
        if let Some(start) = pending_start {
            // The annotated item starts here: run to its `;` (brace-less
            // declaration) or the `}` matching its first `{`.
            let mut depth = 0usize;
            let mut j = i;
            let end = loop {
                if j >= sig.len() {
                    break text.len();
                }
                match sig_text(j) {
                    ";" if depth == 0 => break tokens[sig[j]].end,
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            break tokens[sig[j]].end;
                        }
                    }
                    _ => {}
                }
                j += 1;
            };
            ranges.push((start, end));
            pending_start = None;
            i = j + 1;
            continue;
        }
        i += 1;
    }
    ranges
}

/// Parses every `lint:allow` marker out of the file's comments. The
/// lexer guarantees markers inside string literals are never seen here.
fn parse_suppressions(
    text: &str,
    tokens: &[Token],
) -> (Vec<Suppression>, Vec<MalformedSuppression>) {
    const MARKER: &str = "lint:allow";
    let mut ok = Vec::new();
    let mut bad = Vec::new();
    for (idx, token) in tokens.iter().enumerate() {
        if !matches!(token.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        // The code line this comment governs in comment-above style: the
        // line of the next significant token, skipping continuation
        // comment lines and whitespace.
        let applies_line = tokens[idx + 1..]
            .iter()
            .find(|t| {
                !matches!(
                    t.kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .map_or(token.line, |t| t.line);
        // The marker must open the comment (after the `//`/`/*` fence):
        // prose *mentioning* `lint:allow(...)` — like these docs — is not
        // a suppression.
        let comment = token
            .text(text)
            .trim_start_matches(['/', '*', '!'])
            .trim_start();
        let Some(rest) = comment.strip_prefix(MARKER) else {
            continue;
        };
        let Some(open) = rest.strip_prefix('(') else {
            bad.push(MalformedSuppression {
                line: token.line,
                problem: "expected `lint:allow(rule): reason`".to_string(),
            });
            continue;
        };
        let Some(close) = open.find(')') else {
            bad.push(MalformedSuppression {
                line: token.line,
                problem: "unclosed `(` in `lint:allow(rule): reason`".to_string(),
            });
            continue;
        };
        let rule = open[..close].trim().to_string();
        let tail = &open[close + 1..];
        let reason = tail
            .strip_prefix(':')
            .map(|r| r.trim_end_matches("*/").trim().to_string())
            .unwrap_or_default();
        if rule.is_empty() {
            bad.push(MalformedSuppression {
                line: token.line,
                problem: "empty rule name in `lint:allow(...)`".to_string(),
            });
        } else if reason.is_empty() {
            bad.push(MalformedSuppression {
                line: token.line,
                problem: format!("suppression of `{rule}` carries no reason — `lint:allow({rule}): <why it is safe>` is required"),
            });
        } else {
            ok.push(Suppression {
                line: token.line,
                applies_line,
                rule,
                reason,
            });
        }
    }
    (ok, bad)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::new("crates/x/src/lib.rs".to_string(), src.to_string(), false)
    }

    #[test]
    fn cfg_test_mod_is_a_test_range() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let f = file(src);
        let in_test: Vec<(String, bool)> = (0..f.sig.len())
            .filter(|&i| f.sig_kind(i) == crate::lexer::TokenKind::Ident)
            .map(|i| (f.sig_text(i).to_string(), f.sig_in_test(i)))
            .collect();
        let lookup = |name: &str| {
            in_test
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, t)| *t)
                .unwrap_or(false)
        };
        assert!(!lookup("a"));
        assert!(lookup("b"));
        assert!(!lookup("c"));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_range() {
        let src = "#[cfg(not(test))]\nfn a() {}\n";
        let f = file(src);
        assert!(f.test_ranges.is_empty());
    }

    #[test]
    fn suppressions_require_a_reason() {
        let src = "\
// lint:allow(panic-in-library): documented invariant\n\
// lint:allow(unchecked-cast)\n\
let s = \"lint:allow(in-a-string): not a comment\";\n";
        let f = file(src);
        assert_eq!(f.suppressions.len(), 1);
        assert_eq!(f.suppressions[0].rule, "panic-in-library");
        assert_eq!(f.malformed.len(), 1);
        assert!(f.malformed[0].problem.contains("no reason"));
    }

    #[test]
    fn use_decl_detection() {
        let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u8, u8>) {}\n";
        let f = file(src);
        let hash_positions: Vec<usize> = (0..f.sig.len())
            .filter(|&i| f.sig_text(i) == "HashMap")
            .collect();
        assert_eq!(hash_positions.len(), 2);
        assert!(f.sig_in_use_decl(hash_positions[0]));
        assert!(!f.sig_in_use_decl(hash_positions[1]));
    }
}
