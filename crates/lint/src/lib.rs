//! # `junkyard_lint` — the determinism & conservation gate
//!
//! A zero-dependency static-analysis pass over this workspace's own
//! sources. Every result the reproduction ships rests on two invariants:
//! **bit-identical results at any worker count** and **conserved
//! accounting** (offered == served + declined + dropped + shed +
//! failed). Runtime proptests check both — but only on the code paths
//! they happen to execute. This crate checks the *sources*: nothing can
//! iterate a `HashMap` in a fan-out path, read a wall clock in a sim
//! crate, draw ambient entropy, or add a conserved accounting field that
//! no test pins, without either fixing it or writing down why it is safe.
//!
//! The pipeline:
//!
//! * [`lexer`] — a hand-rolled, lossless Rust lexer (strings, raw
//!   strings, char-vs-lifetime, nested block comments). Tokens tile the
//!   source byte-for-byte; the proptest suite pins that round-trip.
//! * [`source`] — per-file context: significant tokens, `#[cfg(test)]`
//!   ranges, parsed `// lint:allow(rule): reason` suppressions (the
//!   reason is mandatory).
//! * [`parser`] — an item-level parser (fn signatures, struct fields,
//!   bodies) over the lexer; deliberately not a full Rust grammar.
//! * [`symbols`] — the workspace symbol table: every fn, indexed for
//!   name-based (over-approximate) call resolution.
//! * [`callgraph`] — spawn-closure roots, transitive reachability, the
//!   `fanout-purity` rule, and the fan-out scopes that re-scope the
//!   hash-declaration facet of `nondeterministic-iteration`.
//! * [`dims`] — the dimension algebra behind `unit-suffix-consistency`:
//!   unit suffixes (`_ms`, `_qps`, `_grams`, ...) become dimensions;
//!   add/sub/compare require equality, `*`/`/` compose, conversion
//!   constants (`SECONDS_PER_DAY`) carry cross-unit dimensions.
//! * [`rules`] — the rules and their severities (zero-tolerance vs
//!   ratcheted).
//! * [`baseline`] — the `lint_baseline.json` ratchet: legacy finding
//!   counts may only go down.
//! * [`engine`] — the deterministic driver (sorted file order, ordered
//!   maps — the linter obeys the contract it enforces).
//! * [`report`] — the human report and `LINT_report.json`.
//!
//! Run it with `cargo run --release -p junkyard_lint`; CI runs the same
//! command as a hard gate.

pub mod baseline;
pub mod callgraph;
pub mod dims;
pub mod engine;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod source;
pub mod symbols;
