//! The ratchet baseline: the committed `lint_baseline.json` records, per
//! ratcheted rule, how many legacy findings the workspace is allowed to
//! carry. The gate fails the moment a count *rises*; counts falling is
//! progress, and the report suggests tightening the file when they do.
//!
//! The parser is a deliberately tiny, zero-dependency JSON-subset reader
//! (one object of string keys mapping to integers or one level of nested
//! object) — exactly the shape this file has, nothing more.

use std::collections::BTreeMap;

/// The parsed baseline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Allowed finding counts per ratcheted rule name.
    pub ratchets: BTreeMap<String, u64>,
}

impl Baseline {
    /// Parses `lint_baseline.json` text.
    ///
    /// # Errors
    ///
    /// Returns a message when the text is not the expected JSON shape.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let top = p.object()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        let mut ratchets = BTreeMap::new();
        for (key, value) in top {
            match (key.as_str(), value) {
                ("schema", Value::Number(_)) => {}
                ("ratchets", Value::Object(entries)) => {
                    for (rule, count) in entries {
                        match count {
                            Value::Number(n) => {
                                ratchets.insert(rule, n);
                            }
                            Value::Object(_) => {
                                return Err(format!("ratchet `{rule}` must be a number"));
                            }
                        }
                    }
                }
                (other, _) => return Err(format!("unexpected baseline key `{other}`")),
            }
        }
        Ok(Self { ratchets })
    }

    /// Renders the canonical committed form (sorted keys, 2-space
    /// indent, trailing newline).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from("{\n  \"schema\": 1,\n  \"ratchets\": {\n");
        let last = self.ratchets.len().saturating_sub(1);
        for (i, (rule, count)) in self.ratchets.iter().enumerate() {
            out.push_str(&format!(
                "    \"{rule}\": {count}{}\n",
                if i == last { "" } else { "," }
            ));
        }
        out.push_str("  }\n}\n");
        out
    }
}

/// A JSON-subset value: integers and string-keyed objects only.
enum Value {
    Number(u64),
    Object(Vec<(String, Value)>),
}

struct Parser<'s> {
    bytes: &'s [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            ))
        }
    }

    fn object(&mut self) -> Result<Vec<(String, Value)>, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(entries);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(entries);
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.bytes.get(self.pos) {
            Some(b'{') => Ok(Value::Object(self.object()?)),
            Some(b) if b.is_ascii_digit() => {
                let start = self.pos;
                while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
                    self.pos += 1;
                }
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .map(Value::Number)
                    .ok_or_else(|| format!("bad number at offset {start}"))
            }
            _ => Err(format!(
                "expected a number or object at offset {}",
                self.pos
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "non-UTF-8 key".to_string())?
                    .to_string();
                self.pos += 1;
                return Ok(s);
            }
            if b == b'\\' {
                return Err("escapes are not supported in baseline keys".to_string());
            }
            self.pos += 1;
        }
        Err("unterminated string".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_canonical_form() {
        let mut baseline = Baseline::default();
        baseline
            .ratchets
            .insert("panic-in-library".to_string(), 411);
        baseline.ratchets.insert("unchecked-cast".to_string(), 146);
        let text = baseline.render();
        assert_eq!(Baseline::parse(&text).unwrap(), baseline);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Baseline::parse("").is_err());
        assert!(Baseline::parse("{\"ratchets\": [1]}").is_err());
        assert!(Baseline::parse("{\"surprise\": 1}").is_err());
        assert!(Baseline::parse("{\"ratchets\": {\"r\": 1}} tail").is_err());
    }
}
