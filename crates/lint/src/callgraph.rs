//! The workspace call graph and the `fanout-purity` analysis.
//!
//! Roots are the closures handed to `thread::scope` spawn sites (any
//! `.spawn(` call outside test code). From each root the analysis walks
//! name-resolved call edges (see [`crate::symbols`]) to every reachable
//! function and checks each one for effects that would break the
//! bit-identical-at-any-worker-count contract: wall-clock reads,
//! ambient randomness, mutable statics, and iteration over hash-ordered
//! containers.
//!
//! The same reachability defines the **fan-out scope** used to re-scope
//! the declaration facet of `nondeterministic-iteration`: declaring a
//! `HashMap` only needs a justification when the declaration sits on a
//! fan-out path; serial bookkeeping between batches does not.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::lexer::TokenKind;
use crate::parser::ParsedFile;
use crate::rules::{hash_bindings, hash_iteration_points, Finding, RuleId, AMBIENT_RNG_IDENTS};
use crate::source::SourceFile;
use crate::symbols::{Call, FnRef, Symbols};

/// The fan-out analysis results for the whole workspace.
#[derive(Debug, Default)]
pub struct Fanout {
    /// Per file: sorted significant-token ranges that are on a fan-out
    /// path (spawn-closure argument ranges and reachable fn bodies).
    pub scopes: Vec<Vec<(usize, usize)>>,
    /// `fanout-purity` findings.
    pub findings: Vec<Finding>,
}

impl Fanout {
    /// Whether significant-token index `i` of file `file_idx` is inside
    /// the fan-out scope.
    #[must_use]
    pub fn in_scope(&self, file_idx: usize, i: usize) -> bool {
        self.scopes
            .get(file_idx)
            .is_some_and(|ranges| ranges.iter().any(|&(lo, hi)| i >= lo && i < hi))
    }
}

/// One `.spawn(` call site.
#[derive(Debug)]
struct SpawnSite {
    file: usize,
    line: u32,
    /// Significant-token range of the spawn call's argument list.
    range: (usize, usize),
}

/// Extracts every call expression in the sig range `[start, end)`.
fn collect_calls(file: &SourceFile, start: usize, end: usize) -> Vec<Call> {
    let mut calls = Vec::new();
    let n = end.min(file.sig.len());
    for i in start..n {
        if file.sig_kind(i) != TokenKind::Ident {
            continue;
        }
        if i + 1 >= n || file.sig_text(i + 1) != "(" {
            continue;
        }
        let name = file.sig_text(i).to_string();
        if i == 0 {
            calls.push(Call::Plain(name));
            continue;
        }
        match file.sig_text(i - 1) {
            "fn" => {}
            "." => calls.push(Call::Method(name)),
            "::" => {
                if i >= 2 && file.sig_kind(i - 2) == TokenKind::Ident {
                    calls.push(Call::Qualified(file.sig_text(i - 2).to_string(), name));
                } else {
                    calls.push(Call::Plain(name));
                }
            }
            _ => calls.push(Call::Plain(name)),
        }
    }
    calls
}

/// Finds every non-test `.spawn(` call and the sig range of its
/// argument list (which contains the worker closure).
fn spawn_sites(files: &[SourceFile]) -> Vec<SpawnSite> {
    let mut sites = Vec::new();
    for (file_idx, file) in files.iter().enumerate() {
        let n = file.sig.len();
        for i in 0..n {
            if file.sig_text(i) != "spawn"
                || i == 0
                || file.sig_text(i - 1) != "."
                || i + 1 >= n
                || file.sig_text(i + 1) != "("
            {
                continue;
            }
            if file.sig_in_test(i) {
                continue;
            }
            // Match the argument parens.
            let mut depth = 0usize;
            let mut j = i + 1;
            let close = loop {
                if j >= n {
                    break n;
                }
                match file.sig_text(j) {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break j;
                        }
                    }
                    _ => {}
                }
                j += 1;
            };
            sites.push(SpawnSite {
                file: file_idx,
                line: file.sig_line(i),
                range: (i + 2, close),
            });
        }
    }
    sites
}

/// One impure effect found in a token range.
struct Impurity {
    line: u32,
    what: String,
}

/// Scans the sig range of `file` for effects that break replay
/// determinism. `clock_sanctioned` files (the bench crate and the obs
/// profiler module) are allowed wall clocks — that is their whole job.
///
/// The `recorder-in-fanout` facet is zero-tolerance everywhere: a
/// spawn-reachable range must never touch the serial-side
/// `TraceRecorder` (including its `.absorb(` merge). Workers record
/// through per-slot `TraceShard`s minted before the fan-out, so the
/// merged trace cannot depend on worker count or interleaving.
fn impurities(
    file: &SourceFile,
    start: usize,
    end: usize,
    clock_sanctioned: bool,
    iteration_points: &[(usize, String)],
) -> Vec<Impurity> {
    let mut out = Vec::new();
    let n = end.min(file.sig.len());
    for i in start..n {
        if file.sig_in_test(i) {
            continue;
        }
        let text = file.sig_text(i);
        if !clock_sanctioned && (text == "Instant" || text == "SystemTime") {
            out.push(Impurity {
                line: file.sig_line(i),
                what: format!("reads the wall clock (`{text}`)"),
            });
        }
        if text == "TraceRecorder" {
            out.push(Impurity {
                line: file.sig_line(i),
                what: "touches the serial-side `TraceRecorder` (workers must record through per-slot `TraceShard`s)"
                    .to_string(),
            });
        }
        if text == "absorb" && i > 0 && file.sig_text(i - 1) == "." {
            out.push(Impurity {
                line: file.sig_line(i),
                what: "merges trace shards (`.absorb(`) — a serial-side, slot-ordered operation"
                    .to_string(),
            });
        }
        if AMBIENT_RNG_IDENTS.contains(&text) {
            out.push(Impurity {
                line: file.sig_line(i),
                what: format!("draws ambient entropy (`{text}`)"),
            });
        }
        if text == "static" && i + 1 < n && file.sig_text(i + 1) == "mut" {
            out.push(Impurity {
                line: file.sig_line(i),
                what: "touches a mutable static".to_string(),
            });
        }
    }
    for &(idx, ref desc) in iteration_points {
        if idx >= start && idx < n && !file.sig_in_test(idx) {
            out.push(Impurity {
                line: file.sig_line(idx),
                what: format!("observes hash iteration order ({desc})"),
            });
        }
    }
    out
}

/// Runs the whole fan-out analysis: spawn roots → reachability →
/// purity findings + per-file scopes. `clock_sanctioned[i]` marks files
/// allowed to read wall clocks (the bench crate and the obs profiler
/// module).
#[must_use]
pub fn analyze(
    files: &[SourceFile],
    parsed: &[ParsedFile],
    symbols: &Symbols,
    clock_sanctioned: &[bool],
) -> Fanout {
    let sites = spawn_sites(files);
    // Per-file hash context, computed once.
    let per_file_bindings: Vec<Vec<String>> = files.iter().map(hash_bindings).collect();
    let per_file_points: Vec<Vec<(usize, String)>> = files
        .iter()
        .zip(&per_file_bindings)
        .map(|(f, b)| hash_iteration_points(f, b))
        .collect();

    // BFS over call edges from each spawn site's closure.
    let mut visited: BTreeSet<FnRef> = BTreeSet::new();
    let mut origin: BTreeMap<FnRef, usize> = BTreeMap::new(); // site index
    let mut queue: VecDeque<FnRef> = VecDeque::new();
    for (site_idx, site) in sites.iter().enumerate() {
        let file = &files[site.file];
        for call in collect_calls(file, site.range.0, site.range.1) {
            for r in symbols.resolve(parsed, &call) {
                if files[r.0].whole_file_test || files[r.0].sig_in_test(parsed[r.0].fns[r.1].at) {
                    continue;
                }
                if visited.insert(r) {
                    origin.insert(r, site_idx);
                    queue.push_back(r);
                }
            }
        }
    }
    while let Some(r) = queue.pop_front() {
        let Some((start, end)) = parsed[r.0].fns[r.1].body else {
            continue;
        };
        let site_idx = origin[&r];
        for call in collect_calls(&files[r.0], start, end) {
            for next in symbols.resolve(parsed, &call) {
                if files[next.0].whole_file_test
                    || files[next.0].sig_in_test(parsed[next.0].fns[next.1].at)
                {
                    continue;
                }
                if visited.insert(next) {
                    origin.insert(next, site_idx);
                    queue.push_back(next);
                }
            }
        }
    }

    // Findings: direct impurities inside spawn closures...
    let mut findings = Vec::new();
    for site in &sites {
        let file = &files[site.file];
        for imp in impurities(
            file,
            site.range.0,
            site.range.1,
            clock_sanctioned[site.file],
            &per_file_points[site.file],
        ) {
            findings.push(Finding {
                rule: RuleId::FanoutPurity,
                path: file.rel_path.clone(),
                line: imp.line,
                message: format!(
                    "spawn closure (`thread::scope` fan-out at {}:{}) {}",
                    file.rel_path, site.line, imp.what
                ),
                suppressed: None,
            });
        }
    }
    // ... and impure reachable fns, one finding per fn.
    for &r in &visited {
        let f = &parsed[r.0].fns[r.1];
        let Some((start, end)) = f.body else { continue };
        let file = &files[r.0];
        let imps = impurities(
            file,
            start,
            end,
            clock_sanctioned[r.0],
            &per_file_points[r.0],
        );
        if imps.is_empty() {
            continue;
        }
        let site = &sites[origin[&r]];
        let mut whats: Vec<String> = imps.iter().map(|i| i.what.clone()).collect();
        whats.dedup();
        let shown = if whats.len() > 3 {
            format!("{}; and {} more", whats[..3].join("; "), whats.len() - 3)
        } else {
            whats.join("; ")
        };
        findings.push(Finding {
            rule: RuleId::FanoutPurity,
            path: file.rel_path.clone(),
            line: f.line,
            message: format!(
                "fn `{}` is reachable from the `thread::scope` fan-out at {}:{} and {}",
                f.qualified(),
                files[site.file].rel_path,
                site.line,
                shown
            ),
            suppressed: None,
        });
    }

    // Scopes: spawn ranges plus reachable fn bodies, per file.
    let mut scopes: Vec<Vec<(usize, usize)>> = vec![Vec::new(); files.len()];
    for site in &sites {
        scopes[site.file].push(site.range);
    }
    for &r in &visited {
        if let Some(body) = parsed[r.0].fns[r.1].body {
            scopes[r.0].push(body);
        }
    }
    for ranges in &mut scopes {
        ranges.sort_unstable();
    }
    Fanout { scopes, findings }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn run(srcs: &[(&str, &str)]) -> (Vec<SourceFile>, Vec<ParsedFile>, Fanout) {
        let files: Vec<SourceFile> = srcs
            .iter()
            .map(|(path, src)| SourceFile::new((*path).to_string(), (*src).to_string(), false))
            .collect();
        let parsed: Vec<ParsedFile> = files.iter().map(parse).collect();
        let symbols = Symbols::build(&parsed);
        let clock_sanctioned = vec![false; files.len()];
        let fanout = analyze(&files, &parsed, &symbols, &clock_sanctioned);
        (files, parsed, fanout)
    }

    #[test]
    fn impure_fn_reachable_from_spawn_is_flagged_across_crates() {
        let (_, _, fanout) = run(&[
            (
                "crates/a/src/lib.rs",
                "pub fn run() {\n    std::thread::scope(|s| {\n        s.spawn(|| helper());\n    });\n}\n",
            ),
            (
                "crates/b/src/lib.rs",
                "pub fn helper() {\n    let _t = std::time::Instant::now();\n}\n",
            ),
        ]);
        assert_eq!(fanout.findings.len(), 1);
        let f = &fanout.findings[0];
        assert_eq!(f.path, "crates/b/src/lib.rs");
        assert!(f.message.contains("wall clock"), "{}", f.message);
        assert!(f.message.contains("crates/a/src/lib.rs:3"), "{}", f.message);
    }

    #[test]
    fn cycles_terminate_and_still_flag() {
        let (_, _, fanout) = run(&[(
            "crates/a/src/lib.rs",
            "pub fn run() {\n    std::thread::scope(|s| { s.spawn(|| ping()); });\n}\n\
             fn ping() { pong(); }\n\
             fn pong() { ping(); let _ = rand::thread_rng(); }\n",
        )]);
        assert_eq!(fanout.findings.len(), 1);
        assert!(fanout.findings[0].message.contains("ambient entropy"));
    }

    #[test]
    fn method_calls_resolve_to_impl_fns() {
        let (_, _, fanout) = run(&[(
            "crates/a/src/lib.rs",
            "struct W;\nimpl W {\n    fn step(&self) { static mut COUNTER: u64 = 0; let _ = COUNTER; }\n}\n\
             pub fn run(w: &W) {\n    std::thread::scope(|s| { s.spawn(|| w.step()); });\n}\n",
        )]);
        assert_eq!(fanout.findings.len(), 1);
        assert!(fanout.findings[0].message.contains("mutable static"));
        assert!(fanout.findings[0].message.contains("W::step"));
    }

    #[test]
    fn pure_fanout_paths_are_silent_and_scoped() {
        let (_, _, fanout) = run(&[(
            "crates/a/src/lib.rs",
            "pub fn run() {\n    std::thread::scope(|s| { s.spawn(|| work(1)); });\n}\n\
             fn work(x: u64) -> u64 { x + 1 }\n\
             fn unrelated() -> u64 { 7 }\n",
        )]);
        assert!(fanout.findings.is_empty(), "{:?}", fanout.findings);
        // `work`'s body is in scope; `unrelated`'s is not.
        assert!(!fanout.scopes[0].is_empty());
    }

    #[test]
    fn recorder_in_fanout_is_flagged_but_shards_are_not() {
        let (_, _, fanout) = run(&[(
            "crates/a/src/lib.rs",
            "pub fn bad(rec: &mut u64) {\n    std::thread::scope(|s| {\n        s.spawn(|| merge(rec));\n    });\n}\n\
             fn merge(rec: &mut u64) { rec.absorb(7); }\n\
             pub fn worse() {\n    std::thread::scope(|s| {\n        s.spawn(|| { let r = TraceRecorder::new(); drop(r); });\n    });\n}\n\
             pub fn good(shard: &mut u64) {\n    std::thread::scope(|s| { s.spawn(|| { *shard += 1; }); });\n}\n",
        )]);
        // `merge` calls `.absorb(` from a reachable body; `worse` mints a
        // `TraceRecorder` directly inside its spawn closure; the
        // shard-style fan-out in `good` stays silent.
        assert_eq!(fanout.findings.len(), 2, "{:?}", fanout.findings);
        assert!(
            fanout
                .findings
                .iter()
                .any(|f| f.message.contains("TraceRecorder")),
            "{:?}",
            fanout.findings
        );
        assert!(
            fanout
                .findings
                .iter()
                .any(|f| f.message.contains("`merge`") && f.message.contains(".absorb(")),
            "{:?}",
            fanout.findings
        );
    }

    #[test]
    fn hash_iteration_in_reachable_fn_is_impure() {
        let (_, _, fanout) = run(&[(
            "crates/a/src/lib.rs",
            "use std::collections::HashMap;\n\
             pub fn run() {\n    std::thread::scope(|s| { s.spawn(|| tally()); });\n}\n\
             // lint:allow(nondeterministic-iteration): exercised in a purity test\n\
             fn tally() {\n    let m: HashMap<u64, u64> = HashMap::new();\n    for _ in m.iter() {}\n}\n",
        )]);
        assert_eq!(fanout.findings.len(), 1);
        assert!(fanout.findings[0].message.contains("hash iteration order"));
    }
}
