//! The analysis driver: walks the workspace's own sources in a fixed
//! order, runs every rule, resolves `lint:allow` suppressions, audits
//! conserved struct fields against the `tests/` ident corpus, and checks
//! ratcheted counts against the committed baseline.
//!
//! The engine dogfoods the determinism contract it enforces: files are
//! visited in sorted path order, all bookkeeping uses ordered maps, and
//! two runs over the same tree produce byte-identical reports.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::baseline::Baseline;
use crate::callgraph;
use crate::parser::{parse, ParsedFile};
use crate::rules::{conserved_fields, scan_file, FileRole, Finding, RuleId, ALL_RULES};
use crate::source::SourceFile;
use crate::symbols::Symbols;

/// What to scan and how paths map to rule scopes. `Config::junkyard()`
/// is the workspace's committed configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Path prefix exempt from `wall-clock-in-sim`.
    pub bench_prefix: String,
    /// The one library file sanctioned to hold wall clocks: the
    /// observability crate's profiler module, the serial-side boundary
    /// every other wall-clock read must go through.
    pub profiler_module: String,
    /// Accounting/carbon path prefixes audited by `unchecked-cast`.
    pub cast_prefixes: Vec<String>,
    /// Files that ARE the typed-quantity boundary (the newtype and
    /// checked-conversion modules) — exempt from `untyped-quantity`,
    /// whose whole point is to push bare f64s behind them.
    pub units_boundary: Vec<String>,
}

impl Config {
    /// The committed configuration for this workspace.
    #[must_use]
    pub fn junkyard() -> Self {
        Self {
            bench_prefix: "crates/bench/".to_string(),
            profiler_module: "crates/obs/src/profiler.rs".to_string(),
            cast_prefixes: vec![
                "crates/carbon/src/".to_string(),
                "crates/fleet/src/".to_string(),
                "crates/battery/src/".to_string(),
                "crates/grid/src/".to_string(),
                "crates/microsim/src/metrics.rs".to_string(),
                "crates/microsim/src/sweep.rs".to_string(),
            ],
            units_boundary: vec![
                "crates/carbon/src/units.rs".to_string(),
                "crates/carbon/src/convert.rs".to_string(),
            ],
        }
    }
}

/// Per-rule totals after suppression resolution.
#[derive(Debug, Clone)]
pub struct RuleStats {
    /// The rule.
    pub rule: RuleId,
    /// Unsuppressed findings.
    pub active: usize,
    /// Findings covered by a reasoned `lint:allow`.
    pub suppressed: usize,
    /// The committed allowance, for ratcheted rules with a baseline entry.
    pub baseline: Option<u64>,
}

impl RuleStats {
    /// Whether this rule fails the gate.
    #[must_use]
    pub fn failed(&self) -> bool {
        if self.rule.ratcheted() {
            match self.baseline {
                Some(allowed) => self.active as u64 > allowed,
                None => self.active > 0,
            }
        } else {
            self.active > 0
        }
    }
}

/// A reasoned suppression that matched no finding (reported so stale
/// allows are cleaned up; informational, never a failure).
#[derive(Debug, Clone)]
pub struct UnusedSuppression {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// The rule it names.
    pub rule: String,
}

/// The complete outcome of one analysis run.
#[derive(Debug)]
pub struct Analysis {
    /// Every finding, suppressed ones included, sorted by
    /// (path, line, rule).
    pub findings: Vec<Finding>,
    /// Totals per rule, in [`ALL_RULES`] order with the suppression
    /// meta-rule last.
    pub stats: Vec<RuleStats>,
    /// Reasoned suppressions that covered nothing.
    pub unused_suppressions: Vec<UnusedSuppression>,
    /// Number of source files scanned.
    pub files_scanned: usize,
}

impl Analysis {
    /// The stats row for one rule.
    #[must_use]
    pub fn stats_for(&self, rule: RuleId) -> &RuleStats {
        self.stats
            .iter()
            .find(|s| s.rule == rule)
            .expect("stats cover every rule")
    }

    /// Human-readable gate failures; empty means the gate passes.
    #[must_use]
    pub fn failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        for stats in &self.stats {
            if !stats.failed() {
                continue;
            }
            let name = stats.rule.name();
            if stats.rule.ratcheted() {
                match stats.baseline {
                    Some(allowed) => out.push(format!(
                        "{name}: {} findings exceed the committed baseline of {allowed} — fix \
                         the new ones or suppress them with a reason (the ratchet only goes \
                         down)",
                        stats.active
                    )),
                    None => out.push(format!(
                        "{name}: {} findings but lint_baseline.json has no entry for this rule",
                        stats.active
                    )),
                }
            } else {
                out.push(format!(
                    "{name}: {} unsuppressed finding(s) — this rule is zero-tolerance",
                    stats.active
                ));
            }
        }
        out
    }

    /// Whether the gate passes.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.stats.iter().all(|s| !s.failed())
    }
}

/// Collects the workspace's own source files (never `vendor/` or
/// `target/`): the facade's `src/`, the shared `tests/` and `examples/`,
/// and each crate's `src/` and `benches/`.
///
/// # Errors
///
/// Propagates I/O errors from directory walks.
pub fn collect_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for top in ["src", "tests", "examples"] {
        walk(&root.join(top), &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            walk(&dir.join("src"), &mut files)?;
            walk(&dir.join("benches"), &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            walk(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// The workspace-relative, forward-slash form of `path`.
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Maps a relative path to its rule scopes.
fn classify(rel: &str, config: &Config) -> (FileRole, bool) {
    let whole_file_test = rel.starts_with("tests/") || rel.ends_with("/testutil.rs");
    let bench = rel.starts_with(&config.bench_prefix);
    let role = FileRole {
        library: rel.starts_with("src/")
            || (rel.starts_with("crates/") && rel.contains("/src/") && !rel.contains("/src/bin/")),
        bench,
        clock_sanctioned: bench || rel == config.profiler_module,
        cast_audited: config.cast_prefixes.iter().any(|p| rel.starts_with(p)),
        units_boundary: config.units_boundary.iter().any(|p| p == rel),
    };
    (role, whole_file_test)
}

/// Runs the full analysis over the workspace at `root`.
///
/// # Errors
///
/// Returns a message on unreadable files or directories.
pub fn analyze(root: &Path, config: &Config, baseline: &Baseline) -> Result<Analysis, String> {
    let paths = collect_sources(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut files = Vec::with_capacity(paths.len());
    for path in &paths {
        let text =
            fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        let rel = rel_path(root, path);
        let (_, whole_file_test) = classify(&rel, config);
        files.push(SourceFile::new(rel, text, whole_file_test));
    }

    // The conservation corpus: every identifier appearing in `tests/`.
    let mut test_idents: BTreeSet<&str> = BTreeSet::new();
    for file in &files {
        if file.rel_path.starts_with("tests/") {
            for i in 0..file.sig.len() {
                if file.sig_kind(i) == crate::lexer::TokenKind::Ident {
                    test_idents.insert(file.sig_text(i));
                }
            }
        }
    }

    // The semantic layer: parsed items, symbol table, call graph.
    let parsed: Vec<ParsedFile> = files.iter().map(parse).collect();
    let symbols = Symbols::build(&parsed);
    // The callgraph's clock exemption must match `wall-clock-in-sim`'s:
    // the profiler module's methods are wall-clock-sanctioned even when
    // (mis)resolved as reachable from a fan-out, otherwise every
    // `.start(`/`.time(` method call in sim code would drag
    // `Profiler`'s `Instant`s into the spawn-reachable set by bare-name
    // resolution.
    let clock_sanctioned: Vec<bool> = files
        .iter()
        .map(|f| classify(&f.rel_path, config).0.clock_sanctioned)
        .collect();
    let fanout = callgraph::analyze(&files, &parsed, &symbols, &clock_sanctioned);

    let mut findings: Vec<Finding> = Vec::new();
    let mut used: Vec<(String, u32, String)> = Vec::new(); // (path, line, rule) of used allows
    for (file_idx, file) in files.iter().enumerate() {
        let (role, _) = classify(&file.rel_path, config);
        let mut raw = Vec::new();
        let empty: Vec<(usize, usize)> = Vec::new();
        let scopes = fanout.scopes.get(file_idx).unwrap_or(&empty);
        scan_file(file, &parsed[file_idx], role, scopes, &mut raw);
        for finding in &fanout.findings {
            if finding.path == file.rel_path {
                raw.push(finding.clone());
            }
        }
        for field in conserved_fields(file) {
            if !test_idents.contains(field.field.as_str()) {
                raw.push(Finding {
                    rule: RuleId::ConservationAudit,
                    path: field.path.clone(),
                    line: field.line,
                    message: format!(
                        "conserved field `{}.{}` is referenced by no test under tests/ — it \
                         could silently escape the conservation suites",
                        field.strukt, field.field
                    ),
                    suppressed: None,
                });
            }
        }
        // Resolve suppressions: a reasoned allow trailing the finding's
        // line, or in the comment block directly above it, covers it.
        for finding in &mut raw {
            let matched = file.suppressions.iter().find(|s| {
                s.rule == finding.rule.name()
                    && (s.line == finding.line || s.applies_line == finding.line)
            });
            if let Some(allow) = matched {
                finding.suppressed = Some(allow.reason.clone());
                used.push((file.rel_path.clone(), allow.line, allow.rule.clone()));
            }
        }
        // Broken markers and unknown rule names are findings themselves.
        for bad in &file.malformed {
            raw.push(Finding {
                rule: RuleId::MalformedSuppression,
                path: file.rel_path.clone(),
                line: bad.line,
                message: bad.problem.clone(),
                suppressed: None,
            });
        }
        for allow in &file.suppressions {
            if RuleId::from_name(&allow.rule).is_none() {
                raw.push(Finding {
                    rule: RuleId::MalformedSuppression,
                    path: file.rel_path.clone(),
                    line: allow.line,
                    message: format!("`lint:allow({})` names no known rule", allow.rule),
                    suppressed: None,
                });
            }
        }
        findings.append(&mut raw);
    }
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    // Two mentions on one line (`let m: HashMap<_, _> = HashMap::new()`)
    // are one actionable site; a suppression covers the whole line.
    findings.dedup_by(|a, b| (a.rule, &a.path, a.line) == (b.rule, &b.path, b.line));

    // Unused reasoned suppressions (stale allows), informational.
    let mut unused = Vec::new();
    for file in &files {
        for allow in &file.suppressions {
            if RuleId::from_name(&allow.rule).is_some()
                && !used
                    .iter()
                    .any(|(p, l, r)| p == &file.rel_path && *l == allow.line && r == &allow.rule)
            {
                unused.push(UnusedSuppression {
                    path: file.rel_path.clone(),
                    line: allow.line,
                    rule: allow.rule.clone(),
                });
            }
        }
    }

    let mut counts: BTreeMap<&'static str, (usize, usize)> = BTreeMap::new();
    for finding in &findings {
        let entry = counts.entry(finding.rule.name()).or_default();
        if finding.suppressed.is_some() {
            entry.0 += 1;
        } else {
            entry.1 += 1;
        }
    }
    let stats = ALL_RULES
        .into_iter()
        .chain([RuleId::MalformedSuppression])
        .map(|rule| {
            let (suppressed, active) = counts.get(rule.name()).copied().unwrap_or((0, 0));
            RuleStats {
                rule,
                active,
                suppressed,
                baseline: if rule.ratcheted() {
                    baseline.ratchets.get(rule.name()).copied()
                } else {
                    None
                },
            }
        })
        .collect();

    Ok(Analysis {
        findings,
        stats,
        unused_suppressions: unused,
        files_scanned: files.len(),
    })
}
