//! Report rendering: the human terminal report and the machine-readable
//! `LINT_report.json` archived next to the other study artifacts.

use crate::engine::Analysis;

/// Renders the human report. Zero-tolerance findings are listed in full;
/// ratcheted rules report their count against the baseline (listing
/// hundreds of legacy sites every run would bury the signal).
#[must_use]
pub fn human(analysis: &Analysis) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "junkyard_lint: {} files scanned\n\n",
        analysis.files_scanned
    ));
    for stats in &analysis.stats {
        let rule = stats.rule;
        let mark = if stats.failed() { "FAIL" } else { "  ok" };
        match stats.baseline {
            Some(allowed) => out.push_str(&format!(
                "{mark}  {:<28} {:>4} active (baseline {allowed}, {} suppressed)\n",
                rule.name(),
                stats.active,
                stats.suppressed
            )),
            None if rule.ratcheted() => out.push_str(&format!(
                "{mark}  {:<28} {:>4} active (NO BASELINE ENTRY, {} suppressed)\n",
                rule.name(),
                stats.active,
                stats.suppressed
            )),
            None => out.push_str(&format!(
                "{mark}  {:<28} {:>4} active ({} suppressed)\n",
                rule.name(),
                stats.active,
                stats.suppressed
            )),
        }
    }
    out.push('\n');
    let mut listed = 0usize;
    for finding in &analysis.findings {
        let over_budget_ratchet =
            finding.rule.ratcheted() && analysis.stats_for(finding.rule).failed();
        let zero_tolerance_active = !finding.rule.ratcheted() && finding.suppressed.is_none();
        if zero_tolerance_active || over_budget_ratchet {
            out.push_str(&format!(
                "  {}:{} [{}] {}\n",
                finding.path,
                finding.line,
                finding.rule.name(),
                finding.message
            ));
            listed += 1;
        }
    }
    if listed > 0 {
        out.push('\n');
    }
    for stats in &analysis.stats {
        if let Some(allowed) = stats.baseline {
            if (stats.active as u64) < allowed {
                out.push_str(&format!(
                    "note: {} is at {} of {allowed} — tighten lint_baseline.json to lock in \
                     the progress\n",
                    stats.rule.name(),
                    stats.active
                ));
            }
        }
    }
    for unused in &analysis.unused_suppressions {
        out.push_str(&format!(
            "note: stale `lint:allow({})` at {}:{} covers nothing — remove it\n",
            unused.rule, unused.path, unused.line
        ));
    }
    let failures = analysis.failures();
    if failures.is_empty() {
        out.push_str("\nPASS: the workspace satisfies its determinism & conservation contract\n");
    } else {
        out.push_str("\nFAIL:\n");
        for failure in &failures {
            out.push_str(&format!("  - {failure}\n"));
        }
    }
    out
}

/// Renders `LINT_report.json`: every finding (suppressed included), the
/// per-rule totals and ratchet status, and the contract each rule
/// encodes. Hand-rolled JSON — the crate stays zero-dependency.
#[must_use]
pub fn json(analysis: &Analysis) -> String {
    let mut out = String::from("{\n  \"schema\": 2,\n");
    out.push_str(&format!(
        "  \"files_scanned\": {},\n  \"passed\": {},\n",
        analysis.files_scanned,
        analysis.passed()
    ));
    out.push_str("  \"rules\": [\n");
    let last = analysis.stats.len() - 1;
    for (i, stats) in analysis.stats.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rule\": {}, \"contract\": {}, \"active\": {}, \"suppressed\": {}, \
             \"ratcheted\": {}, \"baseline\": {}, \"failed\": {}}}{}\n",
            escape(stats.rule.name()),
            escape(stats.rule.contract()),
            stats.active,
            stats.suppressed,
            stats.rule.ratcheted(),
            stats.baseline.map_or("null".to_string(), |b| b.to_string()),
            stats.failed(),
            if i == last { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"findings\": [\n");
    let last = analysis.findings.len().checked_sub(1);
    for (i, finding) in analysis.findings.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}, \
             \"suppressed\": {}}}{}\n",
            escape(finding.rule.name()),
            escape(&finding.path),
            finding.line,
            escape(&finding.message),
            finding
                .suppressed
                .as_deref()
                .map_or("null".to_string(), |r| escape(r).to_string()),
            if Some(i) == last { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"unused_suppressions\": [\n");
    let last = analysis.unused_suppressions.len().checked_sub(1);
    for (i, unused) in analysis.unused_suppressions.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rule\": {}, \"path\": {}, \"line\": {}}}{}\n",
            escape(&unused.rule),
            escape(&unused.path),
            unused.line,
            if Some(i) == last { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// JSON string literal with the characters our reports can contain
/// escaped (quotes, backslashes, control bytes).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Lines describing every ratcheted rule whose active count differs
/// from its committed baseline. Empty means `lint_baseline.json` is
/// exactly in sync with reality — the invariant `--strict-ratchet`
/// (used by CI) enforces so progress is always locked in.
#[must_use]
pub fn ratchet_drift(analysis: &Analysis) -> Vec<String> {
    let mut out = Vec::new();
    for stats in &analysis.stats {
        if !stats.rule.ratcheted() {
            continue;
        }
        let name = stats.rule.name();
        match stats.baseline {
            None => out.push(format!(
                "{name}: {} active findings but lint_baseline.json has no entry — add \
                 \"{name}\": {}",
                stats.active, stats.active
            )),
            Some(allowed) if (stats.active as u64) < allowed => out.push(format!(
                "{name}: baseline says {allowed} but only {} findings remain — tighten \
                 lint_baseline.json to {} to lock in the progress",
                stats.active, stats.active
            )),
            Some(allowed) if (stats.active as u64) > allowed => out.push(format!(
                "{name}: {} active findings exceed the baseline of {allowed} — fix or \
                 suppress the new ones (the ratchet only goes down)",
                stats.active
            )),
            Some(_) => {}
        }
    }
    out
}

/// The determinism-contract summary printed by `--contract` and quoted
/// in the README: what the gate actually promises.
#[must_use]
pub fn contract() -> String {
    let mut out = String::from("The determinism & conservation contract:\n");
    for rule in crate::rules::ALL_RULES {
        out.push_str(&format!("  {:<28} {}\n", rule.name(), rule.contract()));
    }
    out
}
