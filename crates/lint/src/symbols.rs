//! The workspace symbol table: every parsed `fn` item across every
//! scanned file, indexed for name-based call resolution.
//!
//! Resolution is deliberately an **over-approximation**: calls resolve
//! by name (and by `Type::method` qualifier when one matches), with no
//! module or trait resolution. For the purity rules built on top this
//! errs on the side of reporting — a spurious edge can only make a
//! function *more* reachable, never hide an impure one.

use std::collections::BTreeMap;

use crate::parser::{FnItem, ParsedFile};

/// A function's identity in the workspace: `(file index, fn index)`.
pub type FnRef = (usize, usize);

/// One call site, as recovered from the token stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Call {
    /// `name(...)` — a free function or locally-`use`d item.
    Plain(String),
    /// `Qualifier::name(...)`.
    Qualified(String, String),
    /// `receiver.name(...)`.
    Method(String),
}

/// The workspace symbol table.
#[derive(Debug, Default)]
pub struct Symbols {
    /// Simple name → every fn with that name.
    by_name: BTreeMap<String, Vec<FnRef>>,
    /// `(self type, name)` → fns matching both.
    by_qualified: BTreeMap<(String, String), Vec<FnRef>>,
}

impl Symbols {
    /// Indexes the fns of every parsed file (`parsed[i]` corresponds to
    /// file index `i`).
    #[must_use]
    pub fn build(parsed: &[ParsedFile]) -> Self {
        let mut s = Symbols::default();
        for (file_idx, p) in parsed.iter().enumerate() {
            for (fn_idx, f) in p.fns.iter().enumerate() {
                let r: FnRef = (file_idx, fn_idx);
                s.by_name.entry(f.name.clone()).or_default().push(r);
                if let Some(ty) = &f.self_ty {
                    s.by_qualified
                        .entry((ty.clone(), f.name.clone()))
                        .or_default()
                        .push(r);
                }
            }
        }
        s
    }

    /// Looks up the fn item behind a reference.
    #[must_use]
    pub fn item<'a>(&self, parsed: &'a [ParsedFile], r: FnRef) -> &'a FnItem {
        &parsed[r.0].fns[r.1]
    }

    /// Resolves one call to candidate fns, over-approximately:
    ///
    /// * plain calls match every fn with the name (free fns and
    ///   associated fns alike — `use`d paths erase the qualifier);
    /// * qualified calls prefer fns whose `impl` type matches the
    ///   qualifier, falling back to by-name (the qualifier may be a
    ///   module path segment);
    /// * method calls match fns with the name defined in *some* `impl`
    ///   block.
    #[must_use]
    pub fn resolve(&self, parsed: &[ParsedFile], call: &Call) -> Vec<FnRef> {
        match call {
            Call::Plain(name) => self.by_name.get(name).cloned().unwrap_or_default(),
            Call::Qualified(qual, name) => {
                if let Some(hits) = self.by_qualified.get(&(qual.clone(), name.clone())) {
                    return hits.clone();
                }
                self.by_name.get(name).cloned().unwrap_or_default()
            }
            Call::Method(name) => self
                .by_name
                .get(name)
                .map(|hits| {
                    hits.iter()
                        .copied()
                        .filter(|&r| self.item(parsed, r).self_ty.is_some())
                        .collect()
                })
                .unwrap_or_default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::source::SourceFile;

    fn parsed_files(srcs: &[&str]) -> Vec<ParsedFile> {
        srcs.iter()
            .enumerate()
            .map(|(i, src)| {
                parse(&SourceFile::new(
                    format!("crates/c{i}/src/lib.rs"),
                    (*src).to_string(),
                    false,
                ))
            })
            .collect()
    }

    #[test]
    fn qualified_calls_prefer_the_impl_type() {
        let parsed = parsed_files(&[
            "struct A; impl A { fn go(&self) {} }\nstruct B; impl B { fn go(&self) {} }\n",
        ]);
        let s = Symbols::build(&parsed);
        let hits = s.resolve(&parsed, &Call::Qualified("A".into(), "go".into()));
        assert_eq!(hits.len(), 1);
        assert_eq!(s.item(&parsed, hits[0]).qualified(), "A::go");
        // Method calls over-approximate to both impls.
        assert_eq!(s.resolve(&parsed, &Call::Method("go".into())).len(), 2);
    }

    #[test]
    fn plain_calls_resolve_across_files() {
        let parsed = parsed_files(&["pub fn helper() {}", "fn caller() { }"]);
        let s = Symbols::build(&parsed);
        let hits = s.resolve(&parsed, &Call::Plain("helper".into()));
        assert_eq!(hits, vec![(0, 0)]);
    }

    #[test]
    fn method_resolution_ignores_free_fns() {
        let parsed = parsed_files(&["pub fn poll() {}"]);
        let s = Symbols::build(&parsed);
        assert!(s.resolve(&parsed, &Call::Method("poll".into())).is_empty());
    }
}
