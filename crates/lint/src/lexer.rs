//! A hand-rolled, lossless Rust lexer.
//!
//! The lexer splits a source file into a sequence of [`Token`]s that
//! *tile* the input exactly: concatenating every token's text reproduces
//! the source byte-for-byte (the round-trip property the proptest suite
//! pins). It understands everything that can hide a false match from a
//! naive substring scan — line and nested block comments, string and
//! raw-string literals (with byte/C prefixes and arbitrary `#` fences),
//! char literals versus lifetimes — so the rule engine can reason about
//! *code* tokens only and read *comments* only where it wants to (the
//! `lint:allow` suppressions and the `lint: conserved` struct marks).
//!
//! It is deliberately not a full Rust grammar: it never fails, never
//! panics, and degrades to [`TokenKind::Unknown`] on anything it does not
//! recognise. Malformed input (an unterminated string at end of file)
//! simply becomes one final token stretching to the end.

/// The lexical class of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Spaces, tabs, newlines.
    Whitespace,
    /// `// ...` (including `///` and `//!` doc comments), newline excluded.
    LineComment,
    /// `/* ... */`, nesting respected; unterminated runs to end of file.
    BlockComment,
    /// An identifier or keyword.
    Ident,
    /// A lifetime or loop label such as `'a` (not a char literal).
    Lifetime,
    /// A numeric literal.
    Number,
    /// A `"..."` string (or byte/C string) literal, escapes respected.
    Str,
    /// A raw (byte/C) string literal with its `#` fences.
    RawStr,
    /// A char or byte-char literal such as `'x'` or `b'\n'`.
    Char,
    /// A single punctuation byte.
    Punct,
    /// Anything else (stray non-ASCII, malformed literal tail).
    Unknown,
}

/// One token: a kind plus the byte range it occupies in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset one past the last byte, exclusive.
    pub end: usize,
    /// 1-based line number of the token's first byte.
    pub line: u32,
}

impl Token {
    /// The token's text within `src` (the source it was lexed from).
    #[must_use]
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }
}

/// Whether `byte` can start an identifier. Non-ASCII bytes count as
/// identifier bytes so multi-byte UTF-8 sequences are never split across
/// token boundaries (Rust permits non-ASCII identifiers).
fn is_ident_start(byte: u8) -> bool {
    byte.is_ascii_alphabetic() || byte == b'_' || byte >= 0x80
}

/// Whether `byte` can continue an identifier.
fn is_ident_continue(byte: u8) -> bool {
    byte.is_ascii_alphanumeric() || byte == b'_' || byte >= 0x80
}

/// Lexes `src` into tokens that tile it exactly. Never panics.
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.src.len() {
            let start = self.pos;
            let line = self.line;
            let kind = self.next_kind();
            // Forward progress is guaranteed: every branch of `next_kind`
            // consumes at least one byte, so the loop terminates.
            debug_assert!(self.pos > start);
            self.tokens.push(Token {
                kind,
                start,
                end: self.pos,
                line,
            });
        }
        self.tokens
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Consumes one byte, counting newlines.
    fn bump(&mut self) {
        if self.src[self.pos] == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    /// Consumes the whole UTF-8 code point starting at the cursor, so a
    /// token boundary never lands inside a multi-byte sequence.
    fn bump_char(&mut self) {
        self.bump();
        while self.peek(0).is_some_and(|b| (0x80..0xC0).contains(&b)) {
            self.pos += 1;
        }
    }

    fn next_kind(&mut self) -> TokenKind {
        let byte = self.src[self.pos];
        match byte {
            b' ' | b'\t' | b'\r' | b'\n' => {
                while self
                    .peek(0)
                    .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
                {
                    self.bump();
                }
                TokenKind::Whitespace
            }
            b'/' if self.peek(1) == Some(b'/') => {
                while self.peek(0).is_some_and(|b| b != b'\n') {
                    self.bump();
                }
                TokenKind::LineComment
            }
            b'/' if self.peek(1) == Some(b'*') => {
                self.bump();
                self.bump();
                let mut depth = 1usize;
                while depth > 0 && self.pos < self.src.len() {
                    if self.peek(0) == Some(b'/') && self.peek(1) == Some(b'*') {
                        depth += 1;
                        self.bump();
                        self.bump();
                    } else if self.peek(0) == Some(b'*') && self.peek(1) == Some(b'/') {
                        depth -= 1;
                        self.bump();
                        self.bump();
                    } else {
                        self.bump();
                    }
                }
                TokenKind::BlockComment
            }
            b'\'' => self.lifetime_or_char(),
            b'"' => self.string(),
            _ if byte.is_ascii_digit() => self.number(),
            _ if is_ident_start(byte) => self.ident_or_prefixed_literal(),
            // `::` is one token: the rules must tell a path separator
            // from a field-declaration `:` without reassembling pairs.
            b':' if self.peek(1) == Some(b':') => {
                self.bump();
                self.bump();
                TokenKind::Punct
            }
            _ => {
                self.bump_char();
                if byte.is_ascii() {
                    TokenKind::Punct
                } else {
                    TokenKind::Unknown
                }
            }
        }
    }

    /// Disambiguates `'a` (lifetime / loop label) from `'a'` (char
    /// literal). Called with the cursor on the opening quote.
    fn lifetime_or_char(&mut self) -> TokenKind {
        // An escape is always a char literal: '\n', '\u{1F600}', '\''.
        if self.peek(1) == Some(b'\\') {
            return self.char_literal();
        }
        match self.peek(1) {
            Some(next) if is_ident_start(next) => {
                // Find the end of the identifier run after the quote; a
                // closing quote right after makes it a char literal
                // ('a', 'é'), anything else a lifetime ('a, 'static).
                let mut probe = self.pos + 2;
                while self.src.get(probe).copied().is_some_and(is_ident_continue) {
                    probe += 1;
                }
                if self.src.get(probe) == Some(&b'\'') {
                    self.char_literal()
                } else {
                    self.bump(); // the quote
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.bump_char();
                    }
                    TokenKind::Lifetime
                }
            }
            // Covers '}' and friends: punctuation, then the close quote.
            Some(_) => self.char_literal(),
            None => {
                self.bump();
                TokenKind::Unknown
            }
        }
    }

    /// Consumes a char literal from the opening quote; unterminated
    /// literals stop at end of line (chars cannot span lines).
    fn char_literal(&mut self) -> TokenKind {
        self.bump(); // opening quote
        while let Some(byte) = self.peek(0) {
            match byte {
                b'\\' => {
                    self.bump();
                    if self.peek(0).is_some() {
                        self.bump_char();
                    }
                }
                b'\'' => {
                    self.bump();
                    return TokenKind::Char;
                }
                b'\n' => return TokenKind::Unknown,
                _ => self.bump_char(),
            }
        }
        TokenKind::Unknown
    }

    /// Consumes a `"..."` literal from the opening quote.
    fn string(&mut self) -> TokenKind {
        self.bump(); // opening quote
        while let Some(byte) = self.peek(0) {
            match byte {
                b'\\' => {
                    self.bump();
                    if self.peek(0).is_some() {
                        self.bump_char();
                    }
                }
                b'"' => {
                    self.bump();
                    return TokenKind::Str;
                }
                _ => self.bump_char(),
            }
        }
        TokenKind::Str // unterminated: runs to end of file
    }

    /// Consumes a raw string `r#"..."#` with the cursor on the first `#`
    /// or `"` after the prefix letters (which the caller already took).
    fn raw_string(&mut self) -> TokenKind {
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) != Some(b'"') {
            // `r#foo` raw identifier: the `#`s were consumed, the ident
            // follows. Classify the whole thing as an identifier.
            while self.peek(0).is_some_and(is_ident_continue) {
                self.bump_char();
            }
            return TokenKind::Ident;
        }
        self.bump(); // opening quote
        while self.pos < self.src.len() {
            if self.peek(0) == Some(b'"') {
                let mut matched = 0usize;
                while matched < hashes && self.peek(1 + matched) == Some(b'#') {
                    matched += 1;
                }
                if matched == hashes {
                    self.bump(); // quote
                    for _ in 0..hashes {
                        self.bump();
                    }
                    return TokenKind::RawStr;
                }
            }
            self.bump_char();
        }
        TokenKind::RawStr // unterminated: runs to end of file
    }

    /// Consumes an identifier, or a literal introduced by a prefix
    /// (`r"..."`, `b"..."`, `br#"..."#`, `c"..."`, `b'x'`).
    fn ident_or_prefixed_literal(&mut self) -> TokenKind {
        let start = self.pos;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump_char();
        }
        let ident = &self.src[start..self.pos];
        match self.peek(0) {
            Some(b'"' | b'#') if matches!(ident, b"r" | b"br" | b"cr") => self.raw_string(),
            Some(b'"') if matches!(ident, b"b" | b"c") => self.string(),
            Some(b'\'') if ident == b"b" => self.char_literal(),
            _ => TokenKind::Ident,
        }
    }

    /// Consumes a numeric literal (integer or float, any base, suffixes
    /// and underscores included). `1..x` range syntax keeps its dots.
    fn number(&mut self) -> TokenKind {
        while let Some(byte) = self.peek(0) {
            if byte.is_ascii_alphanumeric() || byte == b'_' {
                let at_exponent = matches!(byte, b'e' | b'E')
                    && matches!(self.peek(1), Some(b'+' | b'-'))
                    && self.peek(2).is_some_and(|b| b.is_ascii_digit());
                self.bump();
                if at_exponent {
                    self.bump(); // the sign
                }
            } else if byte == b'.'
                && self.peek(1) != Some(b'.')
                && self.peek(1).is_none_or(|b| !is_ident_start(b))
            {
                // A decimal point — but not `..` (range) and not `.method()`.
                self.bump();
            } else {
                break;
            }
        }
        TokenKind::Number
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reassemble(src: &str) -> String {
        lex(src).iter().map(|t| t.text(src)).collect()
    }

    #[test]
    fn tokens_tile_the_source() {
        let src = r##"
            // a comment with "a string" and 'c'
            fn main() { let s = "braces { } // not a comment"; }
            /* nested /* block */ still comment */ let r = r#"raw "quoted" text"#;
            let c = 'x'; let esc = '\''; let life: &'static str = "s";
            let b = b"bytes"; let bc = b'\n'; let n = 1_000.5e-3f64; let range = 0..10;
        "##;
        assert_eq!(reassemble(src), src);
    }

    #[test]
    fn strings_hide_comment_markers() {
        let src = "let x = \"// not a comment\"; // real";
        let kinds: Vec<TokenKind> = lex(src)
            .iter()
            .filter(|t| !matches!(t.kind, TokenKind::Whitespace))
            .map(|t| t.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                TokenKind::Ident,
                TokenKind::Ident,
                TokenKind::Punct,
                TokenKind::Str,
                TokenKind::Punct,
                TokenKind::LineComment,
            ]
        );
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        assert!(lex(src).iter().any(|t| t.kind == TokenKind::Lifetime));
        assert!(lex(src).iter().all(|t| t.kind != TokenKind::Char));
    }

    #[test]
    fn unterminated_input_never_panics() {
        for src in ["\"abc", "r#\"abc", "/* abc", "'a", "b'", "'\\", "r#"] {
            assert_eq!(reassemble(src), src, "lossless on {src:?}");
        }
    }

    #[test]
    fn line_numbers_are_one_based_and_track_newlines() {
        let src = "a\nb\n  c";
        let idents: Vec<(String, u32)> = lex(src)
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| (t.text(src).to_string(), t.line))
            .collect();
        assert_eq!(
            idents,
            vec![
                ("a".to_string(), 1),
                ("b".to_string(), 2),
                ("c".to_string(), 3)
            ]
        );
    }
}
