//! The rule set: each rule encodes one clause of the workspace's
//! determinism & conservation contract (see README "Static analysis").
//!
//! Rules come in two severities:
//!
//! * **Zero-tolerance** — any unsuppressed finding fails the gate. These
//!   guard invariants with no legacy debt (nondeterministic iteration,
//!   wall clocks in simulation code, ambient randomness, unaudited
//!   conserved fields).
//! * **Ratcheted** — legacy findings are tolerated up to the committed
//!   count in `lint_baseline.json`; the count may only go *down*. These
//!   cover pre-existing panics and numeric casts being burned down
//!   incrementally.

use crate::parser::ParsedFile;
use crate::source::SourceFile;

/// Identifies one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Iterating a `HashMap`/`HashSet` anywhere, or declaring one on a
    /// fan-out path without a lookup-only justification.
    NondeterministicIteration,
    /// `Instant`/`SystemTime` outside the bench crate.
    WallClockInSim,
    /// Entropy-seeded randomness anywhere: all randomness must flow from
    /// `decorrelate_seed`.
    AmbientRng,
    /// Arithmetic mixing unit dimensions inferred from name suffixes
    /// (`_ms` vs `_secs`, `_grams` vs `_kg`, ...).
    UnitSuffixConsistency,
    /// A function reachable from a `thread::scope` spawn closure that
    /// touches wall clocks, ambient RNG, mutable statics or
    /// hash-iteration.
    FanoutPurity,
    /// `unwrap()`/`.expect(` /`panic!` in non-test library code.
    PanicInLibrary,
    /// `as` numeric casts in accounting/carbon paths.
    UncheckedCast,
    /// A bare-`f64` public param or field on an accounting path that
    /// should carry a `junkyard_carbon::units` newtype.
    UntypedQuantity,
    /// A numeric field of a `/// lint: conserved` struct with no
    /// reference from any test under `tests/`.
    ConservationAudit,
    /// A `lint:allow` marker that cannot be honoured (bad syntax, no
    /// reason). Never suppressible.
    MalformedSuppression,
}

/// Every real rule, in reporting order (excludes the suppression
/// meta-rule, which only fires when a marker itself is broken).
pub const ALL_RULES: [RuleId; 9] = [
    RuleId::NondeterministicIteration,
    RuleId::WallClockInSim,
    RuleId::AmbientRng,
    RuleId::UnitSuffixConsistency,
    RuleId::FanoutPurity,
    RuleId::PanicInLibrary,
    RuleId::UncheckedCast,
    RuleId::UntypedQuantity,
    RuleId::ConservationAudit,
];

impl RuleId {
    /// The kebab-case name used in reports and `lint:allow(...)`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RuleId::NondeterministicIteration => "nondeterministic-iteration",
            RuleId::WallClockInSim => "wall-clock-in-sim",
            RuleId::AmbientRng => "ambient-rng",
            RuleId::UnitSuffixConsistency => "unit-suffix-consistency",
            RuleId::FanoutPurity => "fanout-purity",
            RuleId::PanicInLibrary => "panic-in-library",
            RuleId::UncheckedCast => "unchecked-cast",
            RuleId::UntypedQuantity => "untyped-quantity",
            RuleId::ConservationAudit => "conservation-audit",
            RuleId::MalformedSuppression => "malformed-suppression",
        }
    }

    /// Parses a rule name (as written inside `lint:allow(...)`).
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        ALL_RULES.into_iter().find(|r| r.name() == name)
    }

    /// Whether findings are tolerated up to the committed baseline count
    /// rather than failing outright.
    #[must_use]
    pub fn ratcheted(self) -> bool {
        matches!(
            self,
            RuleId::PanicInLibrary | RuleId::UncheckedCast | RuleId::UntypedQuantity
        )
    }

    /// One-line statement of the invariant the rule encodes.
    #[must_use]
    pub fn contract(self) -> &'static str {
        match self {
            RuleId::NondeterministicIteration => {
                "results are bit-identical at any worker count: no fan-out path may observe \
                 hash-randomized iteration order"
            }
            RuleId::UnitSuffixConsistency => {
                "carbon arithmetic is dimensionally sound: quantities named with unit suffixes \
                 never add, compare or assign across dimensions"
            }
            RuleId::FanoutPurity => {
                "every function reachable from a thread::scope spawn closure is pure of wall \
                 clocks, ambient RNG, mutable statics and hash iteration"
            }
            RuleId::UntypedQuantity => {
                "public accounting quantities carry units newtypes, not bare f64; the bare count \
                 may only go down"
            }
            RuleId::WallClockInSim => {
                "simulated time is the only time: wall clocks exist only in the bench crate"
            }
            RuleId::AmbientRng => {
                "all randomness flows from decorrelate_seed(seed, index): no entropy sources"
            }
            RuleId::PanicInLibrary => {
                "library code returns typed errors; panics are documented contract violations \
                 only, and their count may only go down"
            }
            RuleId::UncheckedCast => {
                "accounting and carbon arithmetic avoids silent `as` truncation; the count may \
                 only go down"
            }
            RuleId::ConservationAudit => {
                "every numeric field of a conserved-accounting struct is pinned by at least one \
                 test under tests/"
            }
            RuleId::MalformedSuppression => "every suppression names a rule and carries a reason",
        }
    }
}

/// One rule match, before and after suppression resolution.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired.
    pub rule: RuleId,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// What was matched and why it matters.
    pub message: String,
    /// `Some(reason)` when an inline `lint:allow` covers this finding.
    pub suppressed: Option<String>,
}

/// What the engine tells the rules about one file's place in the
/// workspace (derived from its path; see `engine::classify`).
#[derive(Debug, Clone, Copy, Default)]
pub struct FileRole {
    /// Library code: `crates/*/src/**` (excluding `src/bin/`) or the
    /// facade's `src/`. Scope of `panic-in-library`.
    pub library: bool,
    /// Under `crates/bench/` — exempt from `wall-clock-in-sim`.
    pub bench: bool,
    /// Sanctioned to read wall clocks: `crates/bench/` or the
    /// observability crate's profiler module (the serial-side profiling
    /// boundary). Scope of `wall-clock-in-sim` and the callgraph's
    /// clock-impurity facet.
    pub clock_sanctioned: bool,
    /// On an accounting/carbon path — scope of `unchecked-cast`.
    pub cast_audited: bool,
    /// The typed-quantity boundary itself (`units.rs`, `convert.rs`) —
    /// exempt from `untyped-quantity`.
    pub units_boundary: bool,
}

/// Newtype idents counted as numeric for the conservation audit, on top
/// of the primitive numeric types.
const NUMERIC_NEWTYPES: [&str; 2] = ["GramsCo2e", "Watts"];

const PRIMITIVE_NUMERIC: [&str; 14] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

fn is_numeric_type(ident: &str) -> bool {
    PRIMITIVE_NUMERIC.contains(&ident) || NUMERIC_NEWTYPES.contains(&ident)
}

/// Methods whose call on a hash-typed binding observes iteration order.
const ITERATION_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Entropy-source identifiers; any appearance is a finding.
pub(crate) const AMBIENT_RNG_IDENTS: [&str; 6] = [
    "thread_rng",
    "ThreadRng",
    "from_entropy",
    "OsRng",
    "getrandom",
    "RandomState",
];

/// Runs every pattern rule over one file, appending findings.
/// `fanout_ranges` are the file's significant-token ranges that sit on a
/// `thread::scope` fan-out path (see `callgraph`).
pub fn scan_file(
    file: &SourceFile,
    parsed: &ParsedFile,
    role: FileRole,
    fanout_ranges: &[(usize, usize)],
    out: &mut Vec<Finding>,
) {
    nondeterministic_iteration(file, fanout_ranges, out);
    wall_clock_in_sim(file, role, out);
    ambient_rng(file, out);
    crate::dims::Checker::run(file, parsed, out);
    panic_in_library(file, role, out);
    unchecked_cast(file, role, out);
    untyped_quantity(file, parsed, role, out);
}

fn push(out: &mut Vec<Finding>, file: &SourceFile, rule: RuleId, line: u32, message: String) {
    out.push(Finding {
        rule,
        path: file.rel_path.clone(),
        line,
        message,
        suppressed: None,
    });
}

/// Rule 1: `nondeterministic-iteration`.
///
/// Two facets, both scoped to non-test code:
///
/// * Declaring or naming a `HashMap`/`HashSet` type (outside `use`
///   declarations) **on a fan-out path** requires a `lint:allow` stating
///   why hash ordering is unobservable — in practice "lookup-only; never
///   iterated". Off fan-out paths, serial bookkeeping may hash freely;
///   the call graph (see `callgraph`) decides which is which.
/// * Calling an iteration-order-observing method (`.iter()`, `.keys()`,
///   `.values()`, `.drain()`, ...) on a binding declared hash-typed in
///   this file, or `for`-looping over one, is flagged at the call site —
///   everywhere, fan-out or not, because iteration order leaks into
///   results regardless of threading.
fn nondeterministic_iteration(
    file: &SourceFile,
    fanout_ranges: &[(usize, usize)],
    out: &mut Vec<Finding>,
) {
    let n = file.sig.len();
    let in_fanout = |i: usize| fanout_ranges.iter().any(|&(lo, hi)| i >= lo && i < hi);
    for i in 0..n {
        let text = file.sig_text(i);
        if text != "HashMap" && text != "HashSet" {
            continue;
        }
        if file.sig_in_test(i) || file.sig_in_use_decl(i) || !in_fanout(i) {
            continue;
        }
        push(
            out,
            file,
            RuleId::NondeterministicIteration,
            file.sig_line(i),
            format!(
                "`{text}` on a thread::scope fan-out path: iteration order is hash-randomized; \
                 use `BTreeMap`/`BTreeSet` or justify with \
                 `lint:allow(nondeterministic-iteration): lookup-only ...`"
            ),
        );
    }
    let bindings = hash_bindings(file);
    for (idx, desc) in hash_iteration_points(file, &bindings) {
        push(
            out,
            file,
            RuleId::NondeterministicIteration,
            file.sig_line(idx),
            format!("{desc}: order is nondeterministic"),
        );
    }
}

/// The names bound to `HashMap`/`HashSet` types in this file's non-test
/// code (let bindings, params, struct fields).
#[must_use]
pub(crate) fn hash_bindings(file: &SourceFile) -> Vec<String> {
    let mut bindings: Vec<String> = Vec::new();
    for i in 0..file.sig.len() {
        let text = file.sig_text(i);
        if text != "HashMap" && text != "HashSet" {
            continue;
        }
        if file.sig_in_test(i) || file.sig_in_use_decl(i) {
            continue;
        }
        if let Some(binding) = binding_of_hash_type(file, i) {
            if !bindings.contains(&binding) {
                bindings.push(binding);
            }
        }
    }
    bindings
}

/// Sites (significant-token index + description) where a hash-typed
/// binding's iteration order is observed in non-test code.
#[must_use]
pub(crate) fn hash_iteration_points(
    file: &SourceFile,
    bindings: &[String],
) -> Vec<(usize, String)> {
    let mut points = Vec::new();
    if bindings.is_empty() {
        return points;
    }
    let n = file.sig.len();
    for i in 0..n {
        if file.sig_in_test(i) {
            continue;
        }
        let text = file.sig_text(i);
        // `binding.iter()` and friends.
        if bindings.iter().any(|b| b == text)
            && i + 3 < n
            && file.sig_text(i + 1) == "."
            && ITERATION_METHODS.contains(&file.sig_text(i + 2))
            && file.sig_text(i + 3) == "("
        {
            points.push((
                i,
                format!(
                    "`{text}.{}()` iterates a hash-typed binding",
                    file.sig_text(i + 2)
                ),
            ));
        }
        // `for ... in binding {` / `for ... in &binding {`.
        if text == "for" {
            let mut j = i + 1;
            let mut guard = 0usize;
            while j < n && file.sig_text(j) != "in" && guard < 48 {
                j += 1;
                guard += 1;
            }
            if j < n && file.sig_text(j) == "in" {
                let mut k = j + 1;
                while k < n && matches!(file.sig_text(k), "&" | "mut") {
                    k += 1;
                }
                if k + 1 < n
                    && bindings.iter().any(|b| b == file.sig_text(k))
                    && file.sig_text(k + 1) == "{"
                {
                    points.push((
                        i,
                        format!(
                            "`for ... in {}` iterates a hash-typed binding",
                            file.sig_text(k)
                        ),
                    ));
                }
            }
        }
    }
    points
}

/// Resolves the binding name a `HashMap`/`HashSet` type mention at
/// significant-token index `i` belongs to: `name: [&mut] [path::]Hash*`
/// (let bindings, fn params, struct fields, closure params) or
/// `name = Hash*::new()`.
fn binding_of_hash_type(file: &SourceFile, i: usize) -> Option<String> {
    // Walk back over the path qualifier (`std :: collections ::`).
    let mut j = i;
    while j >= 2 && file.sig_text(j - 1) == "::" {
        j -= 2;
    }
    // Then over `&`, `mut` and lifetimes to the `:` or `=` introducer.
    let mut k = j;
    while k > 0
        && (matches!(file.sig_text(k - 1), "&" | "mut")
            || file.sig_kind(k - 1) == crate::lexer::TokenKind::Lifetime)
    {
        k -= 1;
    }
    if k >= 2 && matches!(file.sig_text(k - 1), ":" | "=") {
        let name = file.sig_text(k - 2);
        if name
            .chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_')
        {
            return Some(name.to_string());
        }
    }
    None
}

/// Rule 2: `wall-clock-in-sim` — `Instant` / `SystemTime` anywhere
/// outside the sanctioned wall-clock sites: `crates/bench` and the
/// observability crate's profiler module (tests included: simulated
/// time is the only time).
fn wall_clock_in_sim(file: &SourceFile, role: FileRole, out: &mut Vec<Finding>) {
    if role.clock_sanctioned {
        return;
    }
    for i in 0..file.sig.len() {
        let text = file.sig_text(i);
        if text == "Instant" || text == "SystemTime" {
            push(
                out,
                file,
                RuleId::WallClockInSim,
                file.sig_line(i),
                format!(
                    "`{text}` outside crates/bench or the obs profiler: wall-clock reads break \
                     replayability; simulated time must come from the event queue"
                ),
            );
        }
    }
}

/// Rule 3: `ambient-rng` — entropy-seeded randomness anywhere. All
/// randomness must flow from `decorrelate_seed(seed, index)`.
fn ambient_rng(file: &SourceFile, out: &mut Vec<Finding>) {
    for i in 0..file.sig.len() {
        let text = file.sig_text(i);
        if AMBIENT_RNG_IDENTS.contains(&text) {
            push(
                out,
                file,
                RuleId::AmbientRng,
                file.sig_line(i),
                format!(
                    "`{text}` draws ambient entropy: derive all randomness from \
                     `decorrelate_seed` so runs replay bit-identically"
                ),
            );
        }
    }
}

/// Rule 4: `panic-in-library` — `.unwrap()`, `.expect(` and `panic!` in
/// non-test library code. Ratcheted: the baseline count may only fall.
fn panic_in_library(file: &SourceFile, role: FileRole, out: &mut Vec<Finding>) {
    if !role.library {
        return;
    }
    let n = file.sig.len();
    for i in 0..n {
        if file.sig_in_test(i) {
            continue;
        }
        let text = file.sig_text(i);
        let hit = match text {
            "unwrap" | "expect" => {
                i >= 1 && file.sig_text(i - 1) == "." && i + 1 < n && file.sig_text(i + 1) == "("
            }
            "panic" => i + 1 < n && file.sig_text(i + 1) == "!",
            _ => false,
        };
        if hit {
            push(
                out,
                file,
                RuleId::PanicInLibrary,
                file.sig_line(i),
                format!("`{text}` in library code: prefer a typed error on user-reachable paths"),
            );
        }
    }
}

/// Rule 5: `unchecked-cast` — `as` numeric casts on accounting/carbon
/// paths. Ratcheted: the baseline count may only fall.
fn unchecked_cast(file: &SourceFile, role: FileRole, out: &mut Vec<Finding>) {
    if !role.cast_audited {
        return;
    }
    let n = file.sig.len();
    for i in 0..n {
        if file.sig_text(i) != "as" || i + 1 >= n || !is_numeric_type(file.sig_text(i + 1)) {
            continue;
        }
        if file.sig_in_test(i) {
            continue;
        }
        push(
            out,
            file,
            RuleId::UncheckedCast,
            file.sig_line(i),
            format!(
                "`as {}` on an accounting path: silent truncation/rounding; prefer `From`/\
                 `try_from` or a checked helper",
                file.sig_text(i + 1)
            ),
        );
    }
}

/// Rule: `untyped-quantity` — bare-`f64` public params and fields on
/// accounting paths. Ratcheted: migrate to `junkyard_carbon::units`
/// newtypes to burn the count down.
fn untyped_quantity(
    file: &SourceFile,
    parsed: &ParsedFile,
    role: FileRole,
    out: &mut Vec<Finding>,
) {
    if !role.cast_audited || role.units_boundary {
        return;
    }
    for s in &parsed.structs {
        if !s.is_pub || file.sig_in_test(s.at) {
            continue;
        }
        for field in &s.fields {
            if field.is_bare_f64() {
                push(
                    out,
                    file,
                    RuleId::UntypedQuantity,
                    field.line,
                    format!(
                        "field `{}::{}` is a bare f64 on an accounting path: carry a \
                         `junkyard_carbon::units` newtype",
                        s.name, field.name
                    ),
                );
            }
        }
    }
    for f in &parsed.fns {
        if !f.is_pub || file.sig_in_test(f.at) {
            continue;
        }
        for param in &f.params {
            if param.is_bare_f64() {
                push(
                    out,
                    file,
                    RuleId::UntypedQuantity,
                    param.line,
                    format!(
                        "param `{}` of pub fn `{}` is a bare f64 on an accounting path: carry a \
                         `junkyard_carbon::units` newtype",
                        param.name,
                        f.qualified()
                    ),
                );
            }
        }
    }
}

/// A numeric field of a `/// lint: conserved` struct.
#[derive(Debug, Clone)]
pub struct ConservedField {
    /// The struct's name.
    pub strukt: String,
    /// The field's name.
    pub field: String,
    /// Defining file (workspace-relative).
    pub path: String,
    /// 1-based line of the field.
    pub line: u32,
}

/// Rule 6, collection half: finds structs doc-marked `lint: conserved`
/// and lists their numeric fields. The engine checks each against the
/// ident corpus of `tests/` and reports the unreferenced ones.
#[must_use]
pub fn conserved_fields(file: &SourceFile) -> Vec<ConservedField> {
    use crate::lexer::TokenKind;
    let mut fields = Vec::new();
    for (t, token) in file.tokens.iter().enumerate() {
        if !matches!(token.kind, TokenKind::LineComment) {
            continue;
        }
        if !token.text(&file.text).contains("lint: conserved") {
            continue;
        }
        // Find the `struct` keyword among the next significant tokens
        // (doc lines and derive attributes sit in between).
        let first_sig = file.sig.partition_point(|&s| s < t);
        let mut j = first_sig;
        let limit = (first_sig + 64).min(file.sig.len());
        while j < limit && file.sig_text(j) != "struct" {
            j += 1;
        }
        if j + 2 >= file.sig.len() || file.sig_text(j) != "struct" {
            continue;
        }
        let strukt = file.sig_text(j + 1).to_string();
        if file.sig_text(j + 2) != "{" {
            continue; // tuple/unit struct: nothing named to audit
        }
        fields.extend(struct_numeric_fields(file, &strukt, j + 2));
    }
    fields
}

/// Parses `name: Type` fields at brace depth 1 from the struct's opening
/// brace (significant index `open`), returning the numeric-typed ones.
fn struct_numeric_fields(file: &SourceFile, strukt: &str, open: usize) -> Vec<ConservedField> {
    let n = file.sig.len();
    let mut fields = Vec::new();
    let mut depth = 0usize;
    let mut i = open;
    while i < n {
        match file.sig_text(i) {
            "{" | "(" | "[" | "<" => depth += 1,
            "}" | ")" | "]" | ">" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    break;
                }
            }
            ":" if depth == 1 && i >= 1 && i + 1 < n => {
                let name = file.sig_text(i - 1);
                // `::` lexes as one `::` token, so a lone `:` at depth 1
                // is a field separator; the type's first ident decides.
                let mut k = i + 1;
                while k < n
                    && (matches!(file.sig_text(k), "&" | "mut")
                        || file.sig_kind(k) == crate::lexer::TokenKind::Lifetime)
                {
                    k += 1;
                }
                if k < n
                    && is_numeric_type(file.sig_text(k))
                    && name
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_alphabetic() || c == '_')
                {
                    fields.push(ConservedField {
                        strukt: strukt.to_string(),
                        field: name.to_string(),
                        path: file.rel_path.clone(),
                        line: file.sig_line(i - 1),
                    });
                }
            }
            _ => {}
        }
        i += 1;
    }
    fields
}
