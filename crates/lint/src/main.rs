//! The `junkyard_lint` binary: scans the workspace, prints the human
//! report, writes `LINT_report.json` at the workspace root, and exits
//! non-zero when the determinism & conservation gate fails. CI runs this
//! as a hard gate after the build.

use std::path::PathBuf;
use std::process::ExitCode;

use junkyard_lint::baseline::Baseline;
use junkyard_lint::engine::{analyze, Config};
use junkyard_lint::report;

fn main() -> ExitCode {
    if std::env::args().any(|a| a == "--contract") {
        print!("{}", report::contract());
        return ExitCode::SUCCESS;
    }
    let strict_ratchet = std::env::args().any(|a| a == "--strict-ratchet");
    match run(strict_ratchet) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("junkyard_lint: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(strict_ratchet: bool) -> Result<bool, String> {
    // The workspace root: two levels above this crate's manifest, unless
    // the test harness points the scan somewhere else.
    let root = match std::env::var_os("JUNKYARD_LINT_ROOT") {
        Some(dir) => PathBuf::from(dir),
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join(".."),
    };
    let baseline_path = root.join("lint_baseline.json");
    let baseline_text = std::fs::read_to_string(&baseline_path).map_err(|e| {
        format!(
            "reading {} (the ratchet baseline is committed; create it with empty ratchets \
             if starting fresh): {e}",
            baseline_path.display()
        )
    })?;
    let baseline = Baseline::parse(&baseline_text)
        .map_err(|e| format!("parsing {}: {e}", baseline_path.display()))?;

    let analysis = analyze(&root, &Config::junkyard(), &baseline)?;

    let report_path = root.join("LINT_report.json");
    std::fs::write(&report_path, report::json(&analysis))
        .map_err(|e| format!("writing {}: {e}", report_path.display()))?;

    print!("{}", report::human(&analysis));

    // `--strict-ratchet` (CI): the committed baseline must equal the
    // measured counts exactly, so every burn-down is locked in.
    if strict_ratchet {
        let drift = report::ratchet_drift(&analysis);
        if !drift.is_empty() {
            println!("\nFAIL (--strict-ratchet): lint_baseline.json drifted from reality:");
            for line in &drift {
                println!("  - {line}");
            }
            return Ok(false);
        }
    }
    Ok(analysis.passed())
}
