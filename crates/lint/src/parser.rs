//! A lightweight item-level parser over the lossless lexer.
//!
//! This is deliberately **not** a Rust grammar. It recovers just enough
//! structure for the semantic rules: function items (name, enclosing
//! `impl` type, visibility, parameter list, body token range), struct
//! items (name, visibility, fields with their type heads), and — via
//! [`crate::callgraph`] — the call and field expressions inside bodies.
//! Everything it cannot recognise it skips without failing; the rules
//! built on top are written to stay silent on anything unparsed.
//!
//! All positions are indices into the file's *significant* token array
//! (`SourceFile::sig`), so trivia never shifts a range.

use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// One parsed parameter of a function item.
#[derive(Debug, Clone)]
pub struct Param {
    /// The binding name (`_` when the pattern is not a plain ident).
    pub name: String,
    /// The type's significant tokens joined by one space, references and
    /// lifetimes stripped (`"f64"`, `"Vec < f64 >"`).
    pub ty: String,
    /// 1-based line of the parameter name.
    pub line: u32,
    /// Significant-token index of the parameter name.
    pub at: usize,
}

impl Param {
    /// Whether the declared type is a bare `f64` (no newtype, no wrapper).
    #[must_use]
    pub fn is_bare_f64(&self) -> bool {
        self.ty == "f64"
    }
}

/// One parsed `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's own name.
    pub name: String,
    /// The enclosing `impl` block's self type, if any (`Foo` for
    /// `impl Foo` and `impl Trait for Foo` alike).
    pub self_ty: Option<String>,
    /// Whether the item carries any `pub` qualifier (including scoped
    /// forms such as `pub(crate)`).
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Significant-token index of the `fn` keyword.
    pub at: usize,
    /// Parsed parameters (receiver `self` forms excluded).
    pub params: Vec<Param>,
    /// Significant-token range of the body, *exclusive* of the outer
    /// braces; `None` for brace-less trait declarations.
    pub body: Option<(usize, usize)>,
}

impl FnItem {
    /// `Type::name` when the fn is a method, otherwise just the name.
    #[must_use]
    pub fn qualified(&self) -> String {
        match &self.self_ty {
            Some(ty) => format!("{ty}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One parsed named struct field.
#[derive(Debug, Clone)]
pub struct FieldItem {
    /// The field name.
    pub name: String,
    /// The type's significant tokens joined by one space.
    pub ty: String,
    /// Whether the field itself carries a `pub` qualifier.
    pub is_pub: bool,
    /// 1-based line of the field name.
    pub line: u32,
    /// Significant-token index of the field name.
    pub at: usize,
}

impl FieldItem {
    /// Whether the declared type is a bare `f64`.
    #[must_use]
    pub fn is_bare_f64(&self) -> bool {
        self.ty == "f64"
    }
}

/// One parsed `struct` item with named fields (tuple and unit structs
/// carry an empty field list).
#[derive(Debug, Clone)]
pub struct StructItem {
    /// The struct's name.
    pub name: String,
    /// Whether the struct carries any `pub` qualifier.
    pub is_pub: bool,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// Significant-token index of the `struct` keyword.
    pub at: usize,
    /// Named fields, in declaration order.
    pub fields: Vec<FieldItem>,
}

/// Everything the item parser recovered from one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Function items, in source order (nested fns included).
    pub fns: Vec<FnItem>,
    /// Struct items, in source order.
    pub structs: Vec<StructItem>,
}

/// Parses the items of `file`. Never fails; unrecognised constructs are
/// skipped.
#[must_use]
pub fn parse(file: &SourceFile) -> ParsedFile {
    let mut out = ParsedFile::default();
    let n = file.sig.len();
    // Stack of (brace_depth_when_opened, impl self type).
    let mut impl_stack: Vec<(usize, String)> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < n {
        match file.sig_text(i) {
            "{" => {
                depth += 1;
                i += 1;
            }
            "}" => {
                depth = depth.saturating_sub(1);
                while impl_stack.last().is_some_and(|(d, _)| *d > depth) {
                    impl_stack.pop();
                }
                i += 1;
            }
            "impl" => {
                if let Some((ty, open)) = parse_impl_header(file, i) {
                    impl_stack.push((depth + 1, ty));
                    depth += 1;
                    i = open + 1;
                } else {
                    i += 1;
                }
            }
            "fn" => {
                let (item, next) = parse_fn(file, i, impl_stack.last().map(|(_, t)| t.as_str()));
                if let Some(item) = item {
                    out.fns.push(item);
                }
                i = next;
            }
            "struct" => {
                let (item, next) = parse_struct(file, i);
                if let Some(item) = item {
                    out.structs.push(item);
                }
                i = next;
            }
            _ => i += 1,
        }
    }
    out
}

/// Parses `impl ... {`, returning the self type's simple name and the
/// sig index of the opening brace. For `impl Trait for Type` the self
/// type is `Type`.
fn parse_impl_header(file: &SourceFile, at: usize) -> Option<(String, usize)> {
    let n = file.sig.len();
    let mut j = at + 1;
    // Skip the generic parameter list, if any.
    if j < n && file.sig_text(j) == "<" {
        j = skip_angles(file, j)?;
    }
    let mut last_ident: Option<String> = None;
    let mut guard = 0usize;
    while j < n && guard < 128 {
        match file.sig_text(j) {
            "{" => return last_ident.map(|ty| (ty, j)),
            "for" => {
                last_ident = None;
                j += 1;
            }
            "<" => {
                j = skip_angles(file, j)?;
            }
            "where" => {
                // The self type is settled; scan on to the brace.
                while j < n && file.sig_text(j) != "{" {
                    j += 1;
                    guard += 1;
                    if guard >= 512 {
                        return None;
                    }
                }
            }
            _ => {
                if file.sig_kind(j) == TokenKind::Ident && file.sig_text(j) != "dyn" {
                    last_ident = Some(file.sig_text(j).to_string());
                }
                j += 1;
            }
        }
        guard += 1;
    }
    None
}

/// Skips a balanced `< ... >` group starting at `open`, returning the
/// index after the closing `>`.
fn skip_angles(file: &SourceFile, open: usize) -> Option<usize> {
    let n = file.sig.len();
    let mut depth = 0isize;
    let mut j = open;
    while j < n {
        match file.sig_text(j) {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j + 1);
                }
            }
            ";" | "{" => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Whether any of the few tokens before `at` is a `pub` qualifier of the
/// same item (scans back over `const` / `unsafe` / `extern` / ABI
/// strings and the closing paren of `pub(crate)`).
fn has_pub_qualifier(file: &SourceFile, at: usize) -> bool {
    let mut j = at;
    let mut guard = 0usize;
    while j > 0 && guard < 8 {
        j -= 1;
        guard += 1;
        match file.sig_text(j) {
            "pub" => return true,
            "const" | "unsafe" | "extern" | "async" | ")" | "(" | "crate" | "super" | "in" => {}
            other if file.sig_kind(j) == TokenKind::Str && other.starts_with('"') => {}
            _ => return false,
        }
    }
    false
}

/// Parses a `fn` item starting at the `fn` keyword. Returns the item (if
/// recognisable) and the sig index to resume scanning from — which is
/// *inside* the body so nested items are still visited.
fn parse_fn(file: &SourceFile, at: usize, self_ty: Option<&str>) -> (Option<FnItem>, usize) {
    let n = file.sig.len();
    let name_idx = at + 1;
    if name_idx >= n || file.sig_kind(name_idx) != TokenKind::Ident {
        return (None, at + 1);
    }
    let name = file.sig_text(name_idx).to_string();
    let mut j = name_idx + 1;
    if j < n && file.sig_text(j) == "<" {
        match skip_angles(file, j) {
            Some(after) => j = after,
            None => return (None, at + 1),
        }
    }
    if j >= n || file.sig_text(j) != "(" {
        return (None, at + 1);
    }
    let (params, after_params) = parse_params(file, j);
    // Scan the return type / where clause to the body or `;`.
    let mut k = after_params;
    let mut guard = 0usize;
    let body = loop {
        if k >= n || guard > 512 {
            break None;
        }
        match file.sig_text(k) {
            ";" => break None,
            "{" => break Some(k),
            "<" => match skip_angles(file, k) {
                Some(after) => k = after,
                None => break None,
            },
            _ => k += 1,
        }
        guard += 1;
    };
    let body = body.map(|open| {
        let close = matching_brace(file, open);
        (open + 1, close)
    });
    let item = FnItem {
        name,
        self_ty: self_ty.map(str::to_string),
        is_pub: has_pub_qualifier(file, at),
        line: file.sig_line(at),
        at,
        params,
        body,
    };
    // Resume just after the opening brace (or after the signature).
    let resume = match item.body {
        Some((start, _)) => start,
        None => k.min(n),
    };
    (Some(item), resume.max(at + 1))
}

/// Returns the sig index of the `}` matching the `{` at `open` (or the
/// end of file).
fn matching_brace(file: &SourceFile, open: usize) -> usize {
    let n = file.sig.len();
    let mut depth = 0usize;
    let mut j = open;
    while j < n {
        match file.sig_text(j) {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    n
}

/// Parses a parenthesised parameter list starting at `(`, returning the
/// params and the index after the closing `)`.
fn parse_params(file: &SourceFile, open: usize) -> (Vec<Param>, usize) {
    let n = file.sig.len();
    let mut params = Vec::new();
    let mut depth = 0usize;
    let mut j = open;
    let mut piece_start = open + 1;
    let close = loop {
        if j >= n {
            return (params, n);
        }
        match file.sig_text(j) {
            "(" | "[" => depth += 1,
            ")" | "]" => {
                depth -= 1;
                if depth == 0 {
                    break j;
                }
            }
            "," if depth == 1 => {
                push_param(file, piece_start, j, &mut params);
                piece_start = j + 1;
            }
            _ => {}
        }
        j += 1;
    };
    push_param(file, piece_start, close, &mut params);
    (params, close + 1)
}

/// Parses one `name: Type` parameter from the sig range `[start, end)`.
/// Receiver forms (`self`, `&self`, `&mut self`) and non-ident patterns
/// are skipped.
fn push_param(file: &SourceFile, start: usize, end: usize, out: &mut Vec<Param>) {
    let mut j = start;
    // Skip attributes (`#[...]`) and `mut`.
    while j < end {
        match file.sig_text(j) {
            "#" => {
                let mut depth = 0usize;
                j += 1;
                while j < end {
                    match file.sig_text(j) {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                j += 1;
            }
            "mut" => j += 1,
            _ => break,
        }
    }
    if j >= end || file.sig_kind(j) != TokenKind::Ident || file.sig_text(j) == "self" {
        return;
    }
    if j + 1 >= end || file.sig_text(j + 1) != ":" {
        return;
    }
    let name = file.sig_text(j).to_string();
    let line = file.sig_line(j);
    let ty = type_text(file, j + 2, end);
    out.push(Param {
        name,
        ty,
        line,
        at: j,
    });
}

/// The normalised type text of the sig range `[start, end)`: leading
/// references, `mut` and lifetimes stripped, tokens joined by one space.
fn type_text(file: &SourceFile, start: usize, end: usize) -> String {
    let mut j = start;
    while j < end
        && (matches!(file.sig_text(j), "&" | "mut") || file.sig_kind(j) == TokenKind::Lifetime)
    {
        j += 1;
    }
    let mut parts = Vec::new();
    for k in j..end {
        parts.push(file.sig_text(k));
    }
    parts.join(" ")
}

/// Parses a `struct` item starting at the `struct` keyword, returning
/// the item and the index to resume scanning from.
fn parse_struct(file: &SourceFile, at: usize) -> (Option<StructItem>, usize) {
    let n = file.sig.len();
    let name_idx = at + 1;
    if name_idx >= n || file.sig_kind(name_idx) != TokenKind::Ident {
        return (None, at + 1);
    }
    let name = file.sig_text(name_idx).to_string();
    let is_pub = has_pub_qualifier(file, at);
    let line = file.sig_line(at);
    let mut j = name_idx + 1;
    if j < n && file.sig_text(j) == "<" {
        match skip_angles(file, j) {
            Some(after) => j = after,
            None => return (None, at + 1),
        }
    }
    // `where` clauses sit between generics and the brace.
    let mut guard = 0usize;
    while j < n && !matches!(file.sig_text(j), "{" | "(" | ";") && guard < 256 {
        j += 1;
        guard += 1;
    }
    if j >= n || file.sig_text(j) != "{" {
        // Tuple or unit struct: no named fields to audit.
        return (
            Some(StructItem {
                name,
                is_pub,
                line,
                at,
                fields: Vec::new(),
            }),
            at + 1,
        );
    }
    let close = matching_brace(file, j);
    let fields = parse_fields(file, j + 1, close);
    (
        Some(StructItem {
            name,
            is_pub,
            line,
            at,
            fields,
        }),
        j + 1,
    )
}

/// Parses `name: Type` fields from the body range of a struct.
fn parse_fields(file: &SourceFile, start: usize, end: usize) -> Vec<FieldItem> {
    let mut fields = Vec::new();
    let mut j = start;
    while j < end {
        // Skip attributes and doc tokens.
        if file.sig_text(j) == "#" {
            let mut depth = 0usize;
            j += 1;
            while j < end {
                match file.sig_text(j) {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            j += 1;
            continue;
        }
        let mut is_pub = false;
        if file.sig_text(j) == "pub" {
            is_pub = true;
            j += 1;
            if j < end && file.sig_text(j) == "(" {
                while j < end && file.sig_text(j) != ")" {
                    j += 1;
                }
                j += 1;
            }
        }
        if j >= end || file.sig_kind(j) != TokenKind::Ident {
            j += 1;
            continue;
        }
        if j + 1 >= end || file.sig_text(j + 1) != ":" {
            j += 1;
            continue;
        }
        let name = file.sig_text(j).to_string();
        let line = file.sig_line(j);
        // The type runs to the next comma at this nesting level.
        let mut depth = 0usize;
        let mut k = j + 2;
        while k < end {
            match file.sig_text(k) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth = depth.saturating_sub(1),
                "<" => depth += 1,
                ">" => depth = depth.saturating_sub(1),
                "," if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        fields.push(FieldItem {
            name,
            ty: type_text(file, j + 2, k),
            is_pub,
            line,
            at: j,
        });
        j = k + 1;
    }
    fields
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&SourceFile::new(
            "crates/x/src/lib.rs".to_string(),
            src.to_string(),
            false,
        ))
    }

    #[test]
    fn fn_items_capture_name_visibility_params_and_body() {
        let parsed =
            parse_src("pub fn add(a_ms: f64, b: &Vec<f64>) -> f64 { a_ms }\nfn private() {}\n");
        assert_eq!(parsed.fns.len(), 2);
        let add = &parsed.fns[0];
        assert_eq!(add.name, "add");
        assert!(add.is_pub);
        assert_eq!(add.params.len(), 2);
        assert_eq!(add.params[0].name, "a_ms");
        assert!(add.params[0].is_bare_f64());
        assert!(!add.params[1].is_bare_f64());
        assert!(add.body.is_some());
        assert!(!parsed.fns[1].is_pub);
    }

    #[test]
    fn impl_blocks_qualify_methods() {
        let parsed = parse_src(
            "struct Foo;\nimpl Foo {\n    pub fn get(&self) -> f64 { 1.0 }\n}\n\
             impl std::fmt::Display for Foo {\n    fn fmt(&self) -> bool { true }\n}\n",
        );
        let names: Vec<String> = parsed.fns.iter().map(FnItem::qualified).collect();
        assert_eq!(names, vec!["Foo::get".to_string(), "Foo::fmt".to_string()]);
        // Receiver `&self` is not a param.
        assert!(parsed.fns[0].params.is_empty());
    }

    #[test]
    fn struct_fields_capture_types_and_visibility() {
        let parsed = parse_src(
            "pub struct Cell {\n    pub raw: f64,\n    #[serde(default)]\n    count: u32,\n    \
             grams: GramsCo2e,\n}\nstruct Unit;\npub struct Pair(f64, f64);\n",
        );
        assert_eq!(parsed.structs.len(), 3);
        let cell = &parsed.structs[0];
        assert!(cell.is_pub);
        assert_eq!(cell.fields.len(), 3);
        assert!(cell.fields[0].is_pub && cell.fields[0].is_bare_f64());
        assert!(!cell.fields[1].is_pub && !cell.fields[1].is_bare_f64());
        assert_eq!(cell.fields[2].ty, "GramsCo2e");
        assert!(parsed.structs[1].fields.is_empty());
        assert!(parsed.structs[2].fields.is_empty());
    }

    #[test]
    fn nested_fns_are_both_visited() {
        let parsed = parse_src("fn outer() {\n    fn inner(x: f64) {}\n}\n");
        let names: Vec<&str> = parsed.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
    }

    #[test]
    fn generic_fns_and_where_clauses_parse() {
        let parsed = parse_src(
            "pub fn pick<T: Ord>(items: &[T], index_fraction: f64) -> &T where T: Clone { \
             &items[0] }\n",
        );
        assert_eq!(parsed.fns.len(), 1);
        assert_eq!(parsed.fns[0].params.len(), 2);
        assert_eq!(parsed.fns[0].params[1].name, "index_fraction");
    }
}
