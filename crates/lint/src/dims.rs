//! Dimensional analysis over naming conventions.
//!
//! The repo's carbon arithmetic names its quantities with unit suffixes
//! (`median_ms`, `horizon_days`, `capacity_qps`, `retry_grams`,
//! `silicon_mass_kg`, `grams_per_kwh`, ...). This module turns those
//! suffixes into a small dimension algebra and walks function bodies
//! flagging arithmetic that mixes dimensions:
//!
//! * `+`, `-`, comparisons and `min`/`max` require **equal** dimensions;
//! * `*` and `/` **compose** exponents (`qps * secs` = requests,
//!   `grams / kwh` = carbon intensity);
//! * known conversion constants carry cross-unit dimensions
//!   (`SECONDS_PER_DAY` is `secs·days⁻¹`, so `x_days * SECONDS_PER_DAY`
//!   is seconds) — the generic rule: any `A_PER_B` screaming-case
//!   constant whose `A` and `B` are known units divides them;
//! * numeric literals are wildcards; names without a unit suffix are
//!   *unknown* and silence every check they touch.
//!
//! Derived units keep the algebra honest where the repo converts
//! between families: `qps` ≡ `requests·secs⁻¹` and `watts` ≡
//! `joules·secs⁻¹`, so `base_qps * duration_secs` is a request count and
//! `power_watts * dt_secs` is energy. Scale-differing units (`grams` vs
//! `kg`, `joules` vs `kwh`) are deliberately *distinct* axes: adding
//! them is exactly the silent corruption this rule exists to catch.
//!
//! The checker is conservative by construction: a finding is emitted
//! only when **both** sides of an add/sub/compare/assign parsed cleanly
//! to *known, different* dimensions. Anything the expression parser
//! does not understand (closures, `match`, struct-update syntax, ...)
//! resynchronises at the nearest bracket or `;` and stays silent.

use std::collections::BTreeMap;

use crate::lexer::TokenKind;
use crate::parser::ParsedFile;
use crate::rules::{Finding, RuleId};
use crate::source::SourceFile;

/// A dimension: canonical unit axes mapped to non-zero exponents. The
/// empty map is "known dimensionless" (a fraction or a ratio of equals).
pub type Dim = BTreeMap<&'static str, i32>;

/// What the checker knows about one (sub)expression's dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inferred {
    /// No information — silences every check it touches.
    Unknown,
    /// A bare numeric literal: compatible with anything.
    Any,
    /// A known dimension (possibly dimensionless: the empty map).
    Known(Dim),
}

impl Inferred {
    fn known(pairs: &[(&'static str, i32)]) -> Self {
        let mut d = Dim::new();
        for &(axis, exp) in pairs {
            if exp != 0 {
                d.insert(axis, exp);
            }
        }
        Inferred::Known(d)
    }

    /// Renders `secs·days⁻¹` style for messages.
    #[must_use]
    pub fn render(&self) -> String {
        match self {
            Inferred::Unknown => "?".to_string(),
            Inferred::Any => "scalar".to_string(),
            Inferred::Known(d) if d.is_empty() => "dimensionless".to_string(),
            Inferred::Known(d) => {
                let mut parts = Vec::new();
                for (axis, exp) in d {
                    match exp {
                        1 => parts.push((*axis).to_string()),
                        _ => parts.push(format!("{axis}^{exp}")),
                    }
                }
                parts.join("*")
            }
        }
    }
}

/// Canonicalises one underscore-separated name segment to a unit axis
/// (or a derived dimension). Returns `None` for non-unit segments.
fn unit_of(segment: &str) -> Option<Inferred> {
    let one = |axis: &'static str| Some(Inferred::known(&[(axis, 1)]));
    match segment {
        "ms" | "millis" | "milliseconds" => one("ms"),
        "s" | "secs" | "sec" | "seconds" => one("secs"),
        "minutes" => one("minutes"),
        "hours" | "hour" | "hrs" => one("hours"),
        "days" | "day" => one("days"),
        "months" | "month" => one("months"),
        "years" | "year" => one("years"),
        "windows" => one("windows"),
        "requests" | "request" => one("requests"),
        // Derived: throughput is a request count per second.
        "qps" => Some(Inferred::known(&[("requests", 1), ("secs", -1)])),
        "grams" | "gram" | "gco2e" => one("grams"),
        "kg" | "kilograms" => one("kg"),
        "mg" => one("mg"),
        // Derived: power is energy per second.
        "watts" | "watt" => Some(Inferred::known(&[("joules", 1), ("secs", -1)])),
        "kw" => one("kw"),
        "wh" => one("wh"),
        "kwh" => one("kwh"),
        "joules" | "joule" => one("joules"),
        "kj" => one("kj"),
        "bytes" | "byte" => one("bytes"),
        "percent" => one("percent"),
        // Known-dimensionless: ratios of equal dimensions.
        "fraction" | "frac" | "ratio" | "utilization" => Some(Inferred::known(&[])),
        _ => None,
    }
}

/// Compound unit suffixes that must *not* resolve via their last segment
/// (`capacity_amp_hours` is charge, not time).
fn compound_unit(name_lower: &str) -> Option<Inferred> {
    if name_lower == "amp_hours" || name_lower.ends_with("_amp_hours") {
        return Some(Inferred::known(&[("amp_hours", 1)]));
    }
    None
}

/// Infers the dimension of an identifier from its name: `A_per_B`
/// compounds divide, otherwise the last underscore segment decides.
/// Names without a recognised unit suffix are `Unknown`.
#[must_use]
pub fn ident_dim(name: &str) -> Inferred {
    let lower = name.to_ascii_lowercase();
    if let Some(d) = compound_unit(&lower) {
        return d;
    }
    if let Some(split) = lower.rfind("_per_") {
        let num = &lower[..split];
        let den = &lower[split + "_per_".len()..];
        let num_dim = match compound_unit(num) {
            Some(d) => d,
            None => num
                .rsplit('_')
                .next()
                .and_then(unit_of)
                .unwrap_or(Inferred::Unknown),
        };
        // A multi-segment denominator that is not itself a compound unit
        // (`watts_per_rack_unit`) keeps the whole name unknown.
        let den_dim = if den.contains('_') {
            compound_unit(den).unwrap_or(Inferred::Unknown)
        } else {
            unit_of(den).unwrap_or(Inferred::Unknown)
        };
        if matches!(den_dim, Inferred::Unknown) {
            return Inferred::Unknown;
        }
        return mul_div(&num_dim, &den_dim, true);
    }
    lower
        .rsplit('_')
        .next()
        .and_then(unit_of)
        .unwrap_or(Inferred::Unknown)
}

/// Infers the dimension of a screaming-case conversion constant:
/// `SECONDS_PER_DAY` → `secs·days⁻¹`. Non-constant or unrecognised
/// names are `Unknown`.
#[must_use]
pub fn const_dim(name: &str) -> Inferred {
    if name.chars().any(|c| c.is_ascii_lowercase()) {
        return Inferred::Unknown;
    }
    ident_dim(name)
}

/// Multiplies (or divides, when `div`) two inferred dimensions.
#[must_use]
pub fn mul_div(lhs: &Inferred, rhs: &Inferred, div: bool) -> Inferred {
    match (lhs, rhs) {
        (Inferred::Unknown, _) | (_, Inferred::Unknown) => Inferred::Unknown,
        (Inferred::Any, Inferred::Any) => Inferred::Any,
        (Inferred::Any, Inferred::Known(d)) => {
            if div {
                Inferred::Known(d.iter().map(|(a, e)| (*a, -e)).collect())
            } else {
                Inferred::Known(d.clone())
            }
        }
        (Inferred::Known(d), Inferred::Any) => Inferred::Known(d.clone()),
        (Inferred::Known(a), Inferred::Known(b)) => {
            let mut out = a.clone();
            for (axis, exp) in b {
                let signed = if div { -exp } else { *exp };
                let entry = out.entry(axis).or_insert(0);
                *entry += signed;
                if *entry == 0 {
                    out.remove(axis);
                }
            }
            Inferred::Known(out)
        }
    }
}

/// Whether an add/sub/compare between these two inferred dimensions is a
/// mismatch worth flagging: both known, and different.
#[must_use]
pub fn conflicts(lhs: &Inferred, rhs: &Inferred) -> bool {
    matches!((lhs, rhs), (Inferred::Known(a), Inferred::Known(b)) if a != b)
}

/// The additive combination: known dims must agree (the caller flags
/// disagreement); wildcards adopt the other side.
fn add_like(lhs: &Inferred, rhs: &Inferred) -> Inferred {
    match (lhs, rhs) {
        (Inferred::Unknown, _) | (_, Inferred::Unknown) => Inferred::Unknown,
        (Inferred::Any, other) | (other, Inferred::Any) => other.clone(),
        (Inferred::Known(a), Inferred::Known(b)) => {
            if a == b {
                lhs.clone()
            } else {
                Inferred::Unknown
            }
        }
    }
}

/// Methods that preserve their receiver's dimension.
const DIM_PRESERVING: [&str; 9] = [
    "max", "min", "abs", "floor", "ceil", "round", "clamp", "value", "clone",
];

/// Result of parsing one sub-expression.
struct Parsed {
    dim: Inferred,
    /// Index of the first unconsumed significant token.
    next: usize,
    /// The parser hit something it does not model; enclosing operators
    /// must stay silent (brackets and `;` are the resync points).
    stuck: bool,
}

impl Parsed {
    fn stuck(at: usize) -> Self {
        Parsed {
            dim: Inferred::Unknown,
            next: at,
            stuck: true,
        }
    }
}

/// The expression checker for one file.
pub struct Checker<'a> {
    file: &'a SourceFile,
    out: &'a mut Vec<Finding>,
}

impl<'a> Checker<'a> {
    /// Runs the `unit-suffix-consistency` checks over every non-test
    /// function body of `file`.
    pub fn run(file: &'a SourceFile, parsed: &ParsedFile, out: &'a mut Vec<Finding>) {
        let mut checker = Checker { file, out };
        for f in &parsed.fns {
            if file.sig_in_test(f.at) {
                continue;
            }
            if let Some((start, end)) = f.body {
                checker.walk_block(start, end);
            }
        }
    }

    fn text(&self, i: usize) -> &str {
        self.file.sig_text(i)
    }

    fn kind(&self, i: usize) -> TokenKind {
        self.file.sig_kind(i)
    }

    /// Two punct tokens are byte-adjacent (so `<` `<` is `<<`, not two
    /// comparisons).
    fn adjacent(&self, i: usize, j: usize) -> bool {
        self.file.tokens[self.file.sig[i]].end == self.file.tokens[self.file.sig[j]].start
    }

    /// The (possibly multi-token) operator starting at `i`, greedily
    /// combining byte-adjacent punct tokens, with its token length.
    fn op_at(&self, i: usize, end: usize) -> (String, usize) {
        let first = self.text(i);
        if self.kind(i) != TokenKind::Punct {
            return (first.to_string(), 1);
        }
        let mut op = first.to_string();
        let mut len = 1;
        while i + len < end
            && self.kind(i + len) == TokenKind::Punct
            && self.adjacent(i + len - 1, i + len)
            && len < 3
        {
            let cand = format!("{op}{}", self.text(i + len));
            const MULTI: [&str; 17] = [
                "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=", "%=", "&&", "||", "<<", ">>", "..",
                "..=", "=>", "->",
            ];
            if MULTI.contains(&cand.as_str()) {
                op = cand;
                len += 1;
            } else {
                break;
            }
        }
        (op, len)
    }

    fn flag(&mut self, i: usize, message: String) {
        self.out.push(Finding {
            rule: RuleId::UnitSuffixConsistency,
            path: self.file.rel_path.clone(),
            line: self.file.sig_line(i),
            message,
            suppressed: None,
        });
    }

    /// Skips to the token after the `close` matching `open` at `i`.
    fn skip_group(&self, i: usize, end: usize, open: &str, close: &str) -> usize {
        let mut depth = 0usize;
        let mut j = i;
        while j < end {
            let t = self.text(j);
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        end
    }

    /// Skips forward to the next `;` at bracket depth zero (the
    /// statement resync point), or to `end`.
    fn resync_stmt(&self, mut i: usize, end: usize) -> usize {
        let mut depth = 0isize;
        while i < end {
            match self.text(i) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth <= 0 => return i + 1,
                _ => {}
            }
            if depth < 0 {
                return i + 1;
            }
            i += 1;
        }
        end
    }

    /// Walks the statements of a block body (sig range, braces excluded).
    fn walk_block(&mut self, start: usize, end: usize) {
        let mut i = start;
        let mut guard = 0usize;
        while i < end {
            guard += 1;
            if guard > 200_000 {
                return;
            }
            let t = self.text(i).to_string();
            match t.as_str() {
                ";" => i += 1,
                "{" => {
                    let after = self.skip_group(i, end, "{", "}");
                    self.walk_block(i + 1, after.saturating_sub(1));
                    i = after;
                }
                "}" => i += 1,
                "#" => {
                    // Statement attribute: skip `#[...]`.
                    i += 1;
                    if i < end && self.text(i) == "[" {
                        i = self.skip_group(i, end, "[", "]");
                    }
                }
                "let" | "const" => i = self.walk_let(i, end),
                "if" | "while" => i = self.walk_conditional(i, end),
                "for" => i = self.walk_for(i, end),
                "loop" | "unsafe" | "else" => i += 1,
                "match" => {
                    // Check the scrutinee, then skip the arm block whole.
                    let p = self.expr_until_brace(i + 1, end);
                    let mut j = p.next;
                    while j < end && self.text(j) != "{" {
                        j += 1;
                    }
                    i = self.skip_group(j, end, "{", "}");
                }
                "return" | "break" => {
                    let p = self.parse_expr(i + 1, end);
                    i = if p.stuck {
                        self.resync_stmt(p.next, end)
                    } else {
                        p.next
                    };
                }
                "continue" => i += 1,
                "fn" | "struct" | "impl" | "mod" | "trait" | "use" | "type" | "enum" | "static" => {
                    i = self.skip_item(i, end)
                }
                _ => i = self.walk_expr_stmt(i, end),
            }
        }
    }

    /// Skips a nested item: to its `;`, or past its first balanced brace
    /// group, whichever comes first.
    fn skip_item(&self, mut i: usize, end: usize) -> usize {
        while i < end {
            match self.text(i) {
                ";" => return i + 1,
                "{" => return self.skip_group(i, end, "{", "}"),
                _ => i += 1,
            }
        }
        end
    }

    /// `let [mut] name [: Type] = expr ;` — checks name dim vs expr dim.
    fn walk_let(&mut self, at: usize, end: usize) -> usize {
        let mut i = at + 1;
        while i < end && self.text(i) == "mut" {
            i += 1;
        }
        if i >= end || self.kind(i) != TokenKind::Ident {
            // Tuple/struct pattern: skip to `=` then parse rhs unchecked.
            return self.walk_let_tail(i, end, None);
        }
        let name_idx = i;
        let name = self.text(i).to_string();
        i += 1;
        self.walk_let_tail(i, end, Some((name_idx, name)))
    }

    fn walk_let_tail(&mut self, mut i: usize, end: usize, name: Option<(usize, String)>) -> usize {
        // Skip the optional type annotation (no `=` occurs inside it).
        let mut depth = 0isize;
        while i < end {
            match self.text(i) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "=" if depth <= 0 => break,
                ";" if depth <= 0 => return i + 1,
                _ => {}
            }
            i += 1;
        }
        if i >= end {
            return end;
        }
        // `let ... = expr` (also tolerate `let else`: resync covers it).
        let p = self.parse_expr(i + 1, end);
        if let Some((name_idx, name)) = name {
            if !p.stuck {
                let want = ident_dim(&name);
                if conflicts(&want, &p.dim) {
                    self.flag(
                        name_idx,
                        format!(
                            "`{name}` is bound to a value of dimension {} but its suffix says {}",
                            p.dim.render(),
                            want.render()
                        ),
                    );
                }
            }
        }
        if p.stuck {
            self.resync_stmt(p.next, end)
        } else {
            p.next
        }
    }

    /// `if cond { ... }` / `while cond { ... }`: checks the condition
    /// expression, recurses into the block via the main walker.
    fn walk_conditional(&mut self, at: usize, end: usize) -> usize {
        let mut i = at + 1;
        // `if let PAT = expr` / `while let`: skip the pattern.
        if i < end && self.text(i) == "let" {
            let mut depth = 0isize;
            while i < end {
                match self.text(i) {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "=" if depth <= 0 => break,
                    "{" => return i, // malformed; let the walker recurse
                    _ => {}
                }
                i += 1;
            }
            i += 1;
        }
        let p = self.expr_until_brace(i, end);
        // Hand the `{` back to the walker, which recurses into it.
        let mut j = p.next;
        while j < end && self.text(j) != "{" {
            j += 1;
        }
        j
    }

    /// `for pat in expr { ... }`.
    fn walk_for(&mut self, at: usize, end: usize) -> usize {
        let mut i = at + 1;
        let mut guard = 0usize;
        while i < end && self.text(i) != "in" && guard < 64 {
            i += 1;
            guard += 1;
        }
        if i >= end || self.text(i) != "in" {
            return at + 1;
        }
        let p = self.expr_until_brace(i + 1, end);
        let mut j = p.next;
        while j < end && self.text(j) != "{" {
            j += 1;
        }
        j
    }

    /// Parses an expression that terminates at a block-opening `{`
    /// (condition / scrutinee / iterator position — struct literals are
    /// not parsed here, matching rustc's restriction).
    fn expr_until_brace(&mut self, i: usize, end: usize) -> Parsed {
        // Find the `{` at depth 0 and parse within.
        let mut depth = 0isize;
        let mut j = i;
        while j < end {
            match self.text(j) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth <= 0 => break,
                _ => {}
            }
            j += 1;
        }
        self.parse_expr(i, j)
    }

    /// Expression statement: `lhs = rhs;`, `lhs += rhs;` or a plain
    /// expression. Checks compound assignments dimensionally.
    fn walk_expr_stmt(&mut self, at: usize, end: usize) -> usize {
        // Full precedence is safe for an assignment lhs too: `=` and the
        // compound ops terminate the expression parse.
        let lhs = self.parse_expr(at, end);
        if lhs.stuck {
            return self.resync_stmt(lhs.next, end);
        }
        let mut i = lhs.next;
        if i >= end {
            return end;
        }
        let (op, op_len) = self.op_at(i, end);
        let is_assign = matches!(op.as_str(), "=" | "+=" | "-=" | "*=" | "/=" | "%=");
        if !is_assign {
            // A plain expression statement; resync if it did not end
            // cleanly at `;`/`}`.
            if self.text(i) == ";" {
                return i + 1;
            }
            return self.resync_stmt(i, end);
        }
        i += op_len;
        let rhs = self.parse_expr(i, end);
        if !rhs.stuck {
            let effective = match op.as_str() {
                "=" | "+=" | "-=" => rhs.dim.clone(),
                "*=" => mul_div(&lhs.dim, &rhs.dim, false),
                "/=" => mul_div(&lhs.dim, &rhs.dim, true),
                _ => Inferred::Unknown,
            };
            if conflicts(&lhs.dim, &effective) {
                self.flag(
                    at,
                    format!(
                        "`{}` assignment gives a {} value to a {} place",
                        op,
                        effective.render(),
                        lhs.dim.render()
                    ),
                );
            }
        }
        if rhs.stuck {
            self.resync_stmt(rhs.next, end)
        } else if rhs.next < end && self.text(rhs.next) == ";" {
            rhs.next + 1
        } else {
            self.resync_stmt(rhs.next, end)
        }
    }

    /// Parses a full expression (logical precedence downwards).
    fn parse_expr(&mut self, i: usize, end: usize) -> Parsed {
        let lhs = self.parse_add(i, end);
        if lhs.stuck {
            return lhs;
        }
        let mut cur = lhs;
        loop {
            if cur.next >= end {
                return cur;
            }
            let (op, op_len) = self.op_at(cur.next, end);
            match op.as_str() {
                "==" | "!=" | "<" | ">" | "<=" | ">=" => {
                    let rhs = self.parse_add(cur.next + op_len, end);
                    if rhs.stuck {
                        return Parsed {
                            dim: Inferred::Unknown,
                            next: rhs.next,
                            stuck: true,
                        };
                    }
                    if conflicts(&cur.dim, &rhs.dim) {
                        self.flag(
                            cur.next,
                            format!(
                                "`{op}` compares {} with {}",
                                cur.dim.render(),
                                rhs.dim.render()
                            ),
                        );
                    }
                    // Comparison results are dimensionless booleans.
                    cur = Parsed {
                        dim: Inferred::Unknown,
                        next: rhs.next,
                        stuck: false,
                    };
                }
                "&&" | "||" => {
                    let rhs = self.parse_add(cur.next + op_len, end);
                    if rhs.stuck {
                        return Parsed {
                            dim: Inferred::Unknown,
                            next: rhs.next,
                            stuck: true,
                        };
                    }
                    cur = Parsed {
                        dim: Inferred::Unknown,
                        next: rhs.next,
                        stuck: false,
                    };
                }
                _ => return cur,
            }
        }
    }

    /// `mul (('+'|'-') mul)*` — flags mixed-dimension addition.
    fn parse_add(&mut self, i: usize, end: usize) -> Parsed {
        let mut cur = self.parse_mul(i, end);
        if cur.stuck {
            return cur;
        }
        loop {
            if cur.next >= end {
                return cur;
            }
            let (op, op_len) = self.op_at(cur.next, end);
            if op != "+" && op != "-" {
                return cur;
            }
            let op_idx = cur.next;
            let rhs = self.parse_mul(cur.next + op_len, end);
            if rhs.stuck {
                return Parsed {
                    dim: Inferred::Unknown,
                    next: rhs.next,
                    stuck: true,
                };
            }
            if conflicts(&cur.dim, &rhs.dim) {
                self.flag(
                    op_idx,
                    format!(
                        "`{op}` mixes {} with {}",
                        cur.dim.render(),
                        rhs.dim.render()
                    ),
                );
            }
            cur = Parsed {
                dim: add_like(&cur.dim, &rhs.dim),
                next: rhs.next,
                stuck: false,
            };
        }
    }

    /// `cast (('*'|'/'|'%'|shift) cast)*` — composes dimensions.
    fn parse_mul(&mut self, i: usize, end: usize) -> Parsed {
        let mut cur = self.parse_cast(i, end);
        if cur.stuck {
            return cur;
        }
        loop {
            if cur.next >= end {
                return cur;
            }
            let (op, op_len) = self.op_at(cur.next, end);
            let next_dim = match op.as_str() {
                "*" | "/" => {
                    let rhs = self.parse_cast(cur.next + op_len, end);
                    if rhs.stuck {
                        return Parsed {
                            dim: Inferred::Unknown,
                            next: rhs.next,
                            stuck: true,
                        };
                    }
                    let dim = mul_div(&cur.dim, &rhs.dim, op == "/");
                    (dim, rhs.next)
                }
                "%" => {
                    let rhs = self.parse_cast(cur.next + op_len, end);
                    if rhs.stuck {
                        return Parsed {
                            dim: Inferred::Unknown,
                            next: rhs.next,
                            stuck: true,
                        };
                    }
                    (cur.dim.clone(), rhs.next)
                }
                "<<" | ">>" | "&" | "|" | "^" => {
                    let rhs = self.parse_cast(cur.next + op_len, end);
                    if rhs.stuck {
                        return Parsed {
                            dim: Inferred::Unknown,
                            next: rhs.next,
                            stuck: true,
                        };
                    }
                    (Inferred::Unknown, rhs.next)
                }
                _ => return cur,
            };
            cur = Parsed {
                dim: next_dim.0,
                next: next_dim.1,
                stuck: false,
            };
        }
    }

    /// `unary ('as' Type)*` — numeric casts preserve dimension.
    fn parse_cast(&mut self, i: usize, end: usize) -> Parsed {
        let mut cur = self.parse_unary(i, end);
        if cur.stuck {
            return cur;
        }
        while cur.next < end && self.text(cur.next) == "as" {
            let mut j = cur.next + 1;
            // The cast type: idents/paths, possibly `usize` etc.
            while j < end
                && (self.kind(j) == TokenKind::Ident || self.text(j) == "::")
                && self.text(j) != "as"
            {
                j += 1;
            }
            cur = Parsed {
                dim: cur.dim,
                next: j,
                stuck: false,
            };
        }
        cur
    }

    /// Prefix operators preserve (`-`, `!`, `*`, `&`, `&mut`).
    fn parse_unary(&mut self, i: usize, end: usize) -> Parsed {
        if i >= end {
            return Parsed::stuck(i);
        }
        match self.text(i) {
            "-" | "!" | "*" | "&" => {
                let mut j = i + 1;
                while j < end && matches!(self.text(j), "&" | "mut") {
                    j += 1;
                }
                self.parse_unary(j, end)
            }
            _ => self.parse_postfix(i, end),
        }
    }

    /// Primary expression plus postfix chain: field access, method
    /// calls, indexing, `?`.
    fn parse_postfix(&mut self, i: usize, end: usize) -> Parsed {
        let mut cur = self.parse_primary(i, end);
        if cur.stuck {
            return cur;
        }
        loop {
            if cur.next >= end {
                return cur;
            }
            match self.text(cur.next) {
                "?" => {
                    cur.next += 1;
                }
                "." => {
                    let j = cur.next + 1;
                    if j >= end {
                        return cur;
                    }
                    if self.kind(j) == TokenKind::Number {
                        // Tuple index.
                        cur = Parsed {
                            dim: Inferred::Unknown,
                            next: j + 1,
                            stuck: false,
                        };
                        continue;
                    }
                    if self.kind(j) != TokenKind::Ident {
                        return cur;
                    }
                    let name = self.text(j).to_string();
                    let mut k = j + 1;
                    // Turbofish: `.collect::<Vec<_>>()`.
                    if k + 1 < end && self.text(k) == "::" && self.text(k + 1) == "<" {
                        let mut depth = 0isize;
                        k += 1;
                        while k < end {
                            match self.text(k) {
                                "<" => depth += 1,
                                ">" => {
                                    depth -= 1;
                                    if depth == 0 {
                                        k += 1;
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            k += 1;
                        }
                    }
                    if k < end && self.text(k) == "(" {
                        let (arg_dims, after) = self.parse_args(k, end);
                        let dim = self.method_result(&name, &cur.dim, &arg_dims, j);
                        cur = Parsed {
                            dim,
                            next: after,
                            stuck: false,
                        };
                    } else {
                        // Field access: the field name's suffix decides.
                        cur = Parsed {
                            dim: ident_dim(&name),
                            next: k,
                            stuck: false,
                        };
                    }
                }
                "[" => {
                    // Indexing preserves the receiver's dimension
                    // (`sorted_ms[mid]` is still milliseconds).
                    let after = self.skip_group(cur.next, end, "[", "]");
                    cur = Parsed {
                        dim: cur.dim,
                        next: after,
                        stuck: false,
                    };
                }
                "(" => {
                    // Call of a non-path callee (closure var etc.).
                    let after = self.skip_group(cur.next, end, "(", ")");
                    cur = Parsed {
                        dim: Inferred::Unknown,
                        next: after,
                        stuck: false,
                    };
                }
                _ => return cur,
            }
        }
    }

    /// The dimension a method call produces, checking dim-sensitive
    /// methods' arguments along the way.
    fn method_result(
        &mut self,
        name: &str,
        recv: &Inferred,
        args: &[Inferred],
        at: usize,
    ) -> Inferred {
        if DIM_PRESERVING.contains(&name) {
            // `a_ms.max(b)` behaves additively: args must agree.
            for arg in args {
                if conflicts(recv, arg) {
                    self.flag(
                        at,
                        format!(
                            "`.{name}(...)` mixes {} with {}",
                            recv.render(),
                            arg.render()
                        ),
                    );
                }
            }
            return recv.clone();
        }
        if let Some(rest) = name.strip_prefix("from_") {
            // `TimeSpan::from_hours(x)`: the argument must be hours; the
            // result is a newtype (normalised), so Unknown.
            let want = ident_dim(rest);
            if let (Some(arg), Inferred::Known(_)) = (args.first(), &want) {
                if conflicts(&want, arg) {
                    self.flag(
                        at,
                        format!(
                            "`{name}(...)` expects {} but the argument is {}",
                            want.render(),
                            arg.render()
                        ),
                    );
                }
            }
            return Inferred::Unknown;
        }
        // Unit-named accessors (`span.seconds()`, `span.hours()`) yield
        // that unit; anything else is unknown.
        match ident_dim(name) {
            Inferred::Known(d) => Inferred::Known(d),
            _ => Inferred::Unknown,
        }
    }

    /// Parses a parenthesised argument list, returning each argument's
    /// inferred dimension (Unknown for unparseable arguments) and the
    /// index after `)`.
    fn parse_args(&mut self, open: usize, end: usize) -> (Vec<Inferred>, usize) {
        let close = self.skip_group(open, end, "(", ")");
        let inner_end = close.saturating_sub(1);
        let mut dims = Vec::new();
        let mut i = open + 1;
        while i < inner_end {
            let p = self.parse_expr(i, inner_end);
            if p.stuck {
                dims.push(Inferred::Unknown);
                // Resync at the next top-level comma.
                let mut depth = 0isize;
                let mut j = p.next;
                while j < inner_end {
                    match self.text(j) {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "," if depth <= 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                i = j + 1;
            } else {
                dims.push(p.dim);
                if p.next < inner_end && self.text(p.next) == "," {
                    i = p.next + 1;
                } else {
                    break;
                }
            }
        }
        (dims, close)
    }

    /// Primary expressions: literals, paths (with constant and struct
    /// literal handling), parenthesised groups.
    fn parse_primary(&mut self, i: usize, end: usize) -> Parsed {
        if i >= end {
            return Parsed::stuck(i);
        }
        match self.kind(i) {
            TokenKind::Number => Parsed {
                dim: Inferred::Any,
                next: i + 1,
                stuck: false,
            },
            TokenKind::Str | TokenKind::RawStr | TokenKind::Char => Parsed {
                dim: Inferred::Unknown,
                next: i + 1,
                stuck: false,
            },
            TokenKind::Ident => self.parse_path(i, end),
            TokenKind::Punct => match self.text(i) {
                "(" => {
                    let close = self.skip_group(i, end, "(", ")");
                    let inner = self.parse_expr(i + 1, close.saturating_sub(1));
                    // Tuples and unparsed groups are Unknown; a cleanly
                    // parsed single expression keeps its dimension.
                    let dim = if inner.stuck || inner.next + 1 < close {
                        Inferred::Unknown
                    } else {
                        inner.dim
                    };
                    Parsed {
                        dim,
                        next: close,
                        stuck: false,
                    }
                }
                "[" => {
                    // Array literal: skip; Unknown.
                    let close = self.skip_group(i, end, "[", "]");
                    Parsed {
                        dim: Inferred::Unknown,
                        next: close,
                        stuck: false,
                    }
                }
                _ => Parsed::stuck(i),
            },
            _ => Parsed::stuck(i),
        }
    }

    /// An ident path: `name`, `a::b::c`, a macro call (skipped), a
    /// function call, or a struct literal.
    fn parse_path(&mut self, i: usize, end: usize) -> Parsed {
        let mut last = i;
        let mut j = i + 1;
        while j + 1 < end && self.text(j) == "::" && self.kind(j + 1) == TokenKind::Ident {
            last = j + 1;
            j += 2;
        }
        // Turbofish on the path: `Vec::<f64>::new` — treat via skip.
        if j + 1 < end && self.text(j) == "::" && self.text(j + 1) == "<" {
            let mut depth = 0isize;
            let mut k = j + 1;
            while k < end {
                match self.text(k) {
                    "<" => depth += 1,
                    ">" => {
                        depth -= 1;
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            if k < end && self.text(k) == "::" && self.kind(k + 1) == TokenKind::Ident {
                last = k + 1;
                j = k + 2;
            } else {
                j = k;
            }
        }
        let name = self.text(last).to_string();
        // Macro call: `name ! ( ... )` — skip its delimiters entirely.
        if j < end && self.text(j) == "!" {
            let after = match self.text(j + 1) {
                "(" => self.skip_group(j + 1, end, "(", ")"),
                "[" => self.skip_group(j + 1, end, "[", "]"),
                "{" => self.skip_group(j + 1, end, "{", "}"),
                _ => j + 1,
            };
            return Parsed {
                dim: Inferred::Unknown,
                next: after,
                stuck: false,
            };
        }
        // Function / associated-fn call.
        if j < end && self.text(j) == "(" {
            let (arg_dims, after) = self.parse_args(j, end);
            let dim = self.method_result(&name, &Inferred::Unknown, &arg_dims, last);
            return Parsed {
                dim,
                next: after,
                stuck: false,
            };
        }
        // Struct literal: `Name { field: expr, ... }` — only when the
        // brace is immediately followed by `field:`-shaped content and
        // the name is capitalised (blocks after conditions never are).
        if j < end
            && self.text(j) == "{"
            && name.chars().next().is_some_and(char::is_uppercase)
            && self.looks_like_struct_body(j, end)
        {
            return self.parse_struct_literal(j, end);
        }
        // A lone ident: suffix or screaming-case constant.
        let dim = match const_dim(&name) {
            Inferred::Known(d) => Inferred::Known(d),
            _ => ident_dim(&name),
        };
        Parsed {
            dim,
            next: j,
            stuck: false,
        }
    }

    fn looks_like_struct_body(&self, open: usize, end: usize) -> bool {
        if open + 1 >= end {
            return false;
        }
        let t1 = self.text(open + 1);
        if t1 == "}" {
            return true;
        }
        if t1 == ".." {
            return true;
        }
        if self.kind(open + 1) == TokenKind::Ident && open + 2 < end {
            return matches!(self.text(open + 2), ":" | "," | "}");
        }
        false
    }

    /// Parses `{ field: expr, .. }`, checking each field name's suffix
    /// against its initialiser's dimension.
    fn parse_struct_literal(&mut self, open: usize, end: usize) -> Parsed {
        let close = self.skip_group(open, end, "{", "}");
        let inner_end = close.saturating_sub(1);
        let mut i = open + 1;
        while i < inner_end {
            let (op, op_len) = self.op_at(i, inner_end);
            if op == ".." || op == "..=" {
                // Struct-update syntax: skip the base expression.
                let p = self.parse_expr(i + op_len, inner_end);
                i = if p.stuck { inner_end } else { p.next };
                continue;
            }
            if self.kind(i) != TokenKind::Ident {
                break;
            }
            let fname = self.text(i).to_string();
            let fidx = i;
            if i + 1 < inner_end && self.text(i + 1) == ":" {
                let p = self.parse_expr(i + 2, inner_end);
                if !p.stuck {
                    let want = ident_dim(&fname);
                    if conflicts(&want, &p.dim) {
                        self.flag(
                            fidx,
                            format!(
                                "field `{fname}` is initialised with a {} value but its suffix \
                                 says {}",
                                p.dim.render(),
                                want.render()
                            ),
                        );
                    }
                }
                // Resync at the next top-level comma.
                let mut depth = 0isize;
                let mut j = p.next.min(inner_end);
                while j < inner_end {
                    match self.text(j) {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "," if depth <= 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                i = j + 1;
            } else if i + 1 < inner_end && self.text(i + 1) == "," {
                // Shorthand `Name { field, ... }`: name == value.
                i += 2;
            } else {
                i += 2;
            }
        }
        Parsed {
            dim: Inferred::Unknown,
            next: close,
            stuck: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check(src: &str) -> Vec<(u32, String)> {
        let file = SourceFile::new("crates/x/src/lib.rs".to_string(), src.to_string(), false);
        let parsed = parse(&file);
        let mut out = Vec::new();
        Checker::run(&file, &parsed, &mut out);
        out.into_iter().map(|f| (f.line, f.message)).collect()
    }

    #[test]
    fn mixed_unit_add_is_flagged() {
        let hits = check("fn f(a_ms: f64, b_secs: f64) -> f64 { a_ms + b_secs }\n");
        assert_eq!(hits.len(), 1);
        assert!(hits[0].1.contains("ms"), "{}", hits[0].1);
        assert!(hits[0].1.contains("secs"), "{}", hits[0].1);
    }

    #[test]
    fn conversion_constants_reconcile_units() {
        let hits = check(
            "const SECONDS_PER_DAY: f64 = 86_400.0;\n\
             fn f(horizon_days: f64, user_secs: f64) -> f64 {\n\
                 horizon_days * SECONDS_PER_DAY + user_secs\n\
             }\n",
        );
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn derived_qps_times_secs_is_requests() {
        let hits = check(
            "fn f(base_qps: f64, dt_secs: f64, total_requests: f64) -> f64 {\n\
                 base_qps * dt_secs + total_requests\n\
             }\n",
        );
        assert!(hits.is_empty(), "{hits:?}");
        let bad = check(
            "fn f(base_qps: f64, total_requests: f64) -> f64 { base_qps + total_requests }\n",
        );
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn suffix_conflicting_let_binding_is_flagged() {
        let hits = check("fn f(a_ms: f64) { let total_secs = a_ms; }\n");
        assert_eq!(hits.len(), 1);
        assert!(hits[0].1.contains("total_secs"));
    }

    #[test]
    fn grams_vs_kg_comparison_is_flagged() {
        let hits =
            check("fn f(retry_grams: f64, silicon_kg: f64) -> bool { retry_grams > silicon_kg }\n");
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn division_yields_dimensionless_ratio() {
        let hits = check(
            "fn f(dropped_requests: f64, total_requests: f64, drop_fraction: f64) -> bool {\n\
                 dropped_requests / total_requests > drop_fraction\n\
             }\n",
        );
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn struct_literal_field_mismatch_is_flagged() {
        let hits = check(
            "struct Cell { median_ms: f64 }\n\
             fn f(tail_secs: f64) -> Cell { Cell { median_ms: tail_secs } }\n",
        );
        assert_eq!(hits.len(), 1);
        assert!(hits[0].1.contains("median_ms"));
    }

    #[test]
    fn literals_and_unknowns_stay_silent() {
        let hits = check(
            "fn f(a_ms: f64, b: f64) -> f64 {\n\
                 let x = a_ms + 5.0;\n\
                 let y = a_ms + b;\n\
                 x + y\n\
             }\n",
        );
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn unparsed_constructs_resync_silently() {
        let hits = check(
            "fn f(xs: &[f64], a_ms: f64) -> f64 {\n\
                 let v: Vec<f64> = xs.iter().map(|x| x * 2.0).collect::<Vec<f64>>();\n\
                 let m = match v.len() { 0 => 0.0, _ => 1.0 };\n\
                 if a_ms > 1.0 { m } else { a_ms }\n\
             }\n",
        );
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn amp_hours_is_not_time() {
        let hits = check(
            "fn f(capacity_amp_hours: f64, runtime_hours: f64) -> bool {\n\
             capacity_amp_hours > runtime_hours\n}\n",
        );
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn min_max_mixing_is_flagged() {
        let hits = check("fn f(a_ms: f64, b_secs: f64) -> f64 { a_ms.max(b_secs) }\n");
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn from_constructor_argument_is_checked() {
        let hits = check("fn f(dt_secs: f64) { let _t = TimeSpan::from_hours(dt_secs); }\n");
        assert_eq!(hits.len(), 1);
        assert!(hits[0].1.contains("from_hours"));
    }

    #[test]
    fn test_code_is_skipped() {
        let hits = check(
            "#[cfg(test)]\nmod tests {\n    fn f(a_ms: f64, b_secs: f64) -> f64 { a_ms + b_secs }\n}\n",
        );
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn ident_dim_table() {
        assert_eq!(ident_dim("grams_per_kwh").render(), "grams*kwh^-1");
        assert_eq!(ident_dim("windows_per_day").render(), "days^-1*windows");
        assert_eq!(ident_dim("drop_fraction").render(), "dimensionless");
        assert_eq!(ident_dim("watts_per_rack_unit").render(), "?");
        assert_eq!(ident_dim("plain_name").render(), "?");
        assert_eq!(const_dim("SECONDS_PER_DAY").render(), "days^-1*secs");
        assert_eq!(const_dim("seconds_per_day").render(), "?");
    }
}
