//! The concrete [`Evaluator`]: candidates become [`LifecycleSim`] runs
//! over the compiled microsim engine.
//!
//! Each cohort option is assembled exactly like the hand-built lifecycle
//! deployments — catalog devices become microsim nodes and
//! [`CohortDevice`] slots with their Reuse-Factor second-life embodied
//! share — so a planner score and a hand-built study score are directly
//! comparable. The optional saturation screen sweeps every cohort option
//! once up front; a candidate is pruned when the demand beyond its
//! [`LatencyCurve::max_sustainable_qps`] (under the SLO's latency
//! bounds) would shed more of the horizon's traffic than the SLO's
//! ceiling allows — all before any lifecycle run is paid.

use junkyard_battery::charging::SmartChargePolicy;
use junkyard_carbon::units::{GramsCo2e, TimeSpan, Watts};
use junkyard_devices::components::ComponentBreakdown;
use junkyard_devices::device::DeviceSpec;
use junkyard_devices::power::LoadProfile;
use junkyard_fleet::lifecycle::{CohortDevice, LifecycleConfig, LifecycleSim, LifecycleSite};
use junkyard_fleet::schedule::DiurnalSchedule;
use junkyard_fleet::site::{second_life_embodied, GridRegion};
use junkyard_microsim::app::Application;
use junkyard_microsim::network::NetworkModel;
use junkyard_microsim::node::NodeSpec;
use junkyard_microsim::placement::Placement;
use junkyard_microsim::sim::Simulation;
use junkyard_microsim::sweep::{decorrelate_seed, LatencyCurve, SweepConfig};

use crate::candidate::CandidateDeployment;
use crate::evaluator::{EvalError, Evaluation, Evaluator, Fidelity};
use crate::slo::Slo;
use crate::space::{CohortOption, PlannerSpace};

/// The percentile-headroom multiplier of every candidate charging
/// policy (the paper's value; candidates vary the battery floor).
const CHARGE_HEADROOM: f64 = 1.25;

/// Load fractions of nominal capacity the saturation screen sweeps.
const SCREEN_FRACTIONS: [f64; 3] = [0.6, 0.8, 1.0];

/// The leased (rented datacenter) backend a candidate may blend in. A
/// candidate's fallback share scales capacity, power and the amortised
/// embodied bill proportionally — renting half an instance costs half
/// its footprint.
#[derive(Debug, Clone)]
pub struct LeasedBlueprint {
    name: String,
    sim: Simulation,
    region: GridRegion,
    capacity_qps: f64,
    idle_power: Watts,
    dynamic_power: Watts,
    embodied: GramsCo2e,
    amortization: TimeSpan,
}

impl LeasedBlueprint {
    /// Creates a blueprint serving `sim` from `region` at full share
    /// capacity `capacity_qps`, with no power draw or embodied carbon
    /// until the builders set them.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not strictly positive.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        sim: Simulation,
        region: GridRegion,
        capacity_qps: f64,
    ) -> Self {
        assert!(capacity_qps > 0.0, "leased capacity must be positive");
        Self {
            name: name.into(),
            sim,
            region,
            capacity_qps,
            idle_power: Watts::ZERO,
            dynamic_power: Watts::ZERO,
            embodied: GramsCo2e::ZERO,
            amortization: TimeSpan::from_years(4.0),
        }
    }

    /// Sets the full-share power model.
    #[must_use]
    pub fn power(mut self, idle: Watts, dynamic: Watts) -> Self {
        self.idle_power = idle;
        self.dynamic_power = dynamic;
        self
    }

    /// Sets the full-share embodied carbon and its lease amortisation.
    ///
    /// # Panics
    ///
    /// Panics if the lifetime is not strictly positive.
    #[must_use]
    pub fn embodied(mut self, total: GramsCo2e, lifetime: TimeSpan) -> Self {
        assert!(lifetime.seconds() > 0.0, "amortisation must be positive");
        self.embodied = total;
        self.amortization = lifetime;
        self
    }

    /// Full-share serving capacity, requests/second.
    #[must_use]
    pub fn capacity_qps(&self) -> f64 {
        self.capacity_qps
    }
}

/// Scores candidates by building and running a [`LifecycleSim`] per
/// `(candidate, fidelity)` pair. Every internal run is forced serial —
/// the planner parallelises *across* candidates — and workload seeds are
/// derived from the candidate fingerprint, so evaluation is a pure
/// function of its inputs.
///
/// Two modelling biases are inherited from the lifecycle layer and
/// apply to every candidate alike: outage-day latency is measured on
/// the full-strength topology (see the `LifecycleResult::worst_*`
/// docs), and wear-driven battery replacements beyond the evaluation
/// horizon are unbilled (see
/// [`FleetEvaluator::amortize_install`]).
#[derive(Debug, Clone)]
pub struct FleetEvaluator {
    space: PlannerSpace,
    app: Application,
    network: NetworkModel,
    placement_seed: u64,
    request_type: Option<String>,
    schedule: DiurnalSchedule,
    leased: Option<LeasedBlueprint>,
    site_overhead_power: Watts,
    site_overhead_embodied: GramsCo2e,
    mtbf_days: f64,
    install_amortization: Option<TimeSpan>,
    seed: u64,
    /// Per cohort option: its serving simulation, built once (`None`
    /// for empty options, `Err` for recipes the placement cannot fit).
    /// Evaluations reuse these instead of re-assembling the app and
    /// placement on every `(candidate, fidelity)` score.
    cohort_sims: Vec<Option<Result<Simulation, EvalError>>>,
    /// Per cohort option: the saturation sweep of a site built from it
    /// (`None` for empty options or unbuildable cohorts). Empty until
    /// [`FleetEvaluator::with_saturation_screen`] runs.
    screen_curves: Vec<Option<LatencyCurve>>,
    leased_curve: Option<LatencyCurve>,
}

impl FleetEvaluator {
    /// Creates an evaluator scoring candidates of `space` serving
    /// `app`'s traffic over one repeated `schedule` day.
    ///
    /// # Panics
    ///
    /// Panics if the schedule covers more than one day (the lifecycle
    /// repeats a single day curve over the horizon).
    #[must_use]
    pub fn new(
        space: PlannerSpace,
        app: Application,
        network: NetworkModel,
        schedule: DiurnalSchedule,
        seed: u64,
    ) -> Self {
        assert_eq!(
            schedule.day_count(),
            1,
            "the evaluator repeats a one-day schedule over the horizon"
        );
        let mut evaluator = Self {
            space,
            app,
            network,
            placement_seed: 11,
            request_type: None,
            schedule,
            leased: None,
            site_overhead_power: Watts::ZERO,
            site_overhead_embodied: GramsCo2e::ZERO,
            mtbf_days: 0.0,
            install_amortization: None,
            seed,
            cohort_sims: Vec::new(),
            screen_curves: Vec::new(),
            leased_curve: None,
        };
        evaluator.rebuild_cohort_sims();
        evaluator
    }

    /// (Re)builds the per-option serving simulations.
    fn rebuild_cohort_sims(&mut self) {
        self.cohort_sims = self
            .space
            .cohort_options()
            .iter()
            .map(|option| {
                if option.is_empty() {
                    None
                } else {
                    Some(self.build_cohort_sim(option))
                }
            })
            .collect();
    }

    /// The prebuilt simulation of one (non-empty) cohort option.
    fn cohort_sim(&self, cohort: usize) -> Result<&Simulation, EvalError> {
        match &self.cohort_sims[cohort] {
            Some(Ok(sim)) => Ok(sim),
            Some(Err(error)) => Err(error.clone()),
            None => Err(EvalError::Build(
                "empty cohort options build no simulation".to_owned(),
            )),
        }
    }

    /// Restricts every site's workload to a single request type.
    #[must_use]
    pub fn request_type(mut self, name: impl Into<String>) -> Self {
        self.request_type = Some(name.into());
        self
    }

    /// Sets the seed of the swarm-spread placement shuffle (and
    /// rebuilds the prebuilt cohort simulations under it).
    #[must_use]
    pub fn placement_seed(mut self, seed: u64) -> Self {
        self.placement_seed = seed;
        self.rebuild_cohort_sims();
        self
    }

    /// Registers the leased datacenter blueprint candidates may blend
    /// in via their fallback share.
    #[must_use]
    pub fn leased(mut self, blueprint: LeasedBlueprint) -> Self {
        self.leased = Some(blueprint);
        self
    }

    /// Sets the per-cloudlet overhead: an always-on draw (server fan,
    /// switch) and its embodied carbon, charged to every non-empty
    /// cohort site.
    #[must_use]
    pub fn site_overhead(mut self, power: Watts, embodied: GramsCo2e) -> Self {
        self.site_overhead_power = power;
        self.site_overhead_embodied = embodied;
        self
    }

    /// Enables stochastic device failures with the given mean days
    /// between failures per device (candidates pick the refill lag).
    ///
    /// # Panics
    ///
    /// Panics if not strictly positive.
    #[must_use]
    pub fn failures(mut self, mtbf_days: f64) -> Self {
        assert!(mtbf_days > 0.0, "MTBF must be positive");
        self.mtbf_days = mtbf_days;
        self
    }

    /// Amortises each cohort's install embodied carbon over an assumed
    /// service lifetime instead of charging it in full against the
    /// evaluation horizon.
    ///
    /// The lifecycle simulator charges a cohort's install bill on day 0,
    /// which is the right accounting for a multi-year trajectory — but a
    /// planner scoring candidates over a few simulated days would then
    /// weigh the whole install against a sliver of the requests it buys,
    /// and every comparison would collapse towards the leased backend
    /// (whose embodied share is already lease-amortised). Scaling the
    /// charged install to `horizon / lifetime` makes a short-horizon
    /// score a steady-state estimate of the lifetime-amortised
    /// gCO2e/request, directly comparable across cohort and leased
    /// candidates. Wear-driven battery replacements beyond the horizon
    /// remain unbilled — a small pro-cohort bias that applies to every
    /// cohort candidate alike.
    ///
    /// # Panics
    ///
    /// Panics if the lifetime is not strictly positive.
    #[must_use]
    pub fn amortize_install(mut self, lifetime: TimeSpan) -> Self {
        assert!(
            lifetime.seconds() > 0.0,
            "service lifetime must be positive"
        );
        self.install_amortization = Some(lifetime);
        self
    }

    /// Runs the saturation screen: every cohort option (and the leased
    /// blueprint) is swept once at a few fractions of its nominal
    /// capacity, so [`Evaluator::sustainable_capacity_qps`] can prune
    /// undersized candidates without a lifecycle run. The sweeps are
    /// serial and seeded, so screening is deterministic.
    #[must_use]
    pub fn with_saturation_screen(mut self) -> Self {
        let screen_seed = decorrelate_seed(self.seed, 0x5c_4ee4);
        self.screen_curves = self
            .space
            .cohort_options()
            .iter()
            .enumerate()
            .map(|(index, option)| {
                let sim = match self.cohort_sims.get(index)? {
                    Some(Ok(sim)) => sim,
                    _ => return None,
                };
                Some(self.sweep(
                    sim,
                    option.capacity_qps(),
                    decorrelate_seed(screen_seed, index as u64 + 1),
                ))
            })
            .collect();
        self.leased_curve = self.leased.as_ref().map(|blueprint| {
            self.sweep(
                &blueprint.sim,
                blueprint.capacity_qps,
                decorrelate_seed(screen_seed, 0x1ea5ed),
            )
        });
        self
    }

    /// The space this evaluator scores candidates of.
    #[must_use]
    pub fn space(&self) -> &PlannerSpace {
        &self.space
    }

    /// Sweeps a site simulation at the screen's capacity fractions.
    fn sweep(&self, sim: &Simulation, capacity_qps: f64, seed: u64) -> LatencyCurve {
        let points: Vec<f64> = SCREEN_FRACTIONS.iter().map(|f| f * capacity_qps).collect();
        let mut config = SweepConfig::new(points, 2.0, 0.5)
            .seed(seed)
            .decorrelated_seeds()
            .parallelism(1);
        if let Some(request_type) = &self.request_type {
            config = config.request_type(request_type.clone());
        }
        config
            .run("screen", sim)
            .expect("screen sweeps use the evaluator's own request type")
    }

    /// Builds the serving simulation of one cohort option.
    fn build_cohort_sim(&self, option: &CohortOption) -> Result<Simulation, EvalError> {
        let mut nodes = Vec::with_capacity(option.device_count());
        for (slot, (device, _, count)) in option.slots().iter().enumerate() {
            for i in 0..*count {
                nodes.push(NodeSpec::from_device(
                    format!("s{slot}-{}-{i}", device.name()),
                    device,
                ));
            }
        }
        let app = self.app.clone();
        let placement = Placement::swarm_spread(&app, &nodes, self.placement_seed)
            .map_err(|e| EvalError::Build(format!("{}: {e:?}", option.label())))?;
        Simulation::new(app, nodes, placement, self.network)
            .map_err(|e| EvalError::Build(format!("{}: {e}", option.label())))
    }

    /// Builds one cohort device slot from a catalog model.
    fn cohort_slot(device: &DeviceSpec, capacity_qps: f64) -> Result<CohortDevice, EvalError> {
        let battery = device
            .battery()
            .ok_or_else(|| EvalError::Build(format!("{} carries no battery", device.name())))?;
        let components = device.components().ok_or_else(|| {
            EvalError::Build(format!("{} carries no component breakdown", device.name()))
        })?;
        let reuse = components.reuse_factor(&ComponentBreakdown::compute_node_role());
        let replacement = second_life_embodied(device.embodied(), &reuse);
        let curve = device.power();
        Ok(CohortDevice::new(
            device.name(),
            device.average_power(&LoadProfile::light_medium()),
            battery,
            replacement,
            capacity_qps,
        )
        .power(curve.idle(), curve.at_full_load() - curve.idle()))
    }

    /// Builds one cohort lifecycle site for a candidate's region choice.
    fn build_cohort_site(
        &self,
        candidate: &CandidateDeployment,
        region: &GridRegion,
        cohort: usize,
        horizon_days: usize,
    ) -> Result<LifecycleSite, EvalError> {
        let option = &self.space.cohort_options()[cohort];
        let sim = self.cohort_sim(cohort)?;
        let mut devices = Vec::with_capacity(option.device_count());
        for (device, qps, count) in option.slots() {
            for _ in 0..*count {
                devices.push(Self::cohort_slot(device, *qps)?);
            }
        }
        let mut install: GramsCo2e = devices
            .iter()
            .map(CohortDevice::replacement_embodied)
            .sum::<GramsCo2e>()
            + self.site_overhead_embodied;
        if let Some(lifetime) = self.install_amortization {
            let horizon = TimeSpan::from_days(horizon_days as f64);
            install = install * (horizon.seconds() / lifetime.seconds()).min(1.0);
        }
        let floor = self.space.charge_floor_of(candidate);
        let mut site =
            LifecycleSite::try_cohort(region.name(), sim, region.clone(), devices, install)
                .map_err(|e| EvalError::Build(e.to_string()))?
                .overhead_power(self.site_overhead_power)
                .charge_policy(SmartChargePolicy::new(floor, CHARGE_HEADROOM));
        if self.mtbf_days > 0.0 {
            site = site
                .failures(self.mtbf_days, self.space.refill_lag_of(candidate))
                .map_err(|e| EvalError::Build(e.to_string()))?;
        }
        if let Some(request_type) = &self.request_type {
            site = site.request_type(request_type.clone());
        }
        Ok(site)
    }

    /// Builds the scaled leased site for a candidate's fallback share.
    fn build_leased_site(&self, share: f64) -> Result<LifecycleSite, EvalError> {
        let blueprint = self.leased.as_ref().ok_or_else(|| {
            EvalError::Build(
                "candidate wants a leased fallback but no blueprint is registered".to_owned(),
            )
        })?;
        let mut site = LifecycleSite::try_leased(
            blueprint.name.clone(),
            &blueprint.sim,
            blueprint.region.clone(),
            blueprint.capacity_qps * share,
        )
        .map_err(|e| EvalError::Build(e.to_string()))?
        .power(
            blueprint.idle_power * share,
            blueprint.dynamic_power * share,
        )
        .embodied(blueprint.embodied * share, blueprint.amortization);
        if let Some(request_type) = &self.request_type {
            site = site.request_type(request_type.clone());
        }
        Ok(site)
    }
}

impl Evaluator for FleetEvaluator {
    fn evaluate(
        &self,
        candidate: &CandidateDeployment,
        fidelity: Fidelity,
    ) -> Result<Evaluation, EvalError> {
        if !self.space.is_valid(candidate) {
            return Err(EvalError::Build(
                "candidate indexes outside the space or provisions nothing".to_owned(),
            ));
        }
        let mut sites = Vec::new();
        for (r, region) in self.space.regions().iter().enumerate() {
            let cohort = candidate.site_cohorts()[r];
            if self.space.cohort_options()[cohort].is_empty() {
                continue;
            }
            sites.push(self.build_cohort_site(
                candidate,
                region,
                cohort,
                fidelity.horizon_days(),
            )?);
        }
        let share = self.space.fallback_share_of(candidate);
        if share > 0.0 {
            sites.push(self.build_leased_site(share)?);
        }

        let days = fidelity.horizon_days();
        let config = LifecycleConfig::new(1)
            .horizon_days(days)
            .windows_per_day(fidelity.windows_per_day())
            .sim_slice_s(fidelity.sim_slice_s())
            .warmup_s(fidelity.warmup_s())
            .seed(decorrelate_seed(self.seed, candidate.fingerprint()))
            .parallelism(1);
        let result = LifecycleSim::new(
            sites,
            self.schedule.clone(),
            self.space.routing_of(candidate),
            config,
        )
        .run()
        .map_err(|e| EvalError::Sim(e.to_string()))?;

        Ok(Evaluation::new(
            result.grams_per_request(),
            result.worst_median_ms(),
            result.worst_tail_ms(),
            result.worst_p99_ms(),
            result.shed_fraction(),
            result.total_requests(),
            result.total_carbon().kilograms(),
            self.space.total_devices(candidate),
        ))
    }

    fn sustainable_capacity_qps(&self, candidate: &CandidateDeployment, slo: &Slo) -> Option<f64> {
        if self.screen_curves.is_empty() {
            return None;
        }
        let mut sustainable = 0.0;
        for &cohort in candidate.site_cohorts() {
            let option = &self.space.cohort_options()[cohort];
            if option.is_empty() {
                continue;
            }
            // An unbuildable cohort contributes nothing (and will fail
            // its build during evaluation anyway).
            if let Some(curve) = &self.screen_curves[cohort] {
                let knee = curve
                    .max_sustainable_qps(slo.median_limit_ms(), slo.tail_limit_ms())
                    .unwrap_or(0.0);
                sustainable += knee.min(option.capacity_qps());
            }
        }
        let share = self.space.fallback_share_of(candidate);
        if share > 0.0 {
            if let (Some(blueprint), Some(curve)) = (&self.leased, &self.leased_curve) {
                let knee = curve
                    .max_sustainable_qps(slo.median_limit_ms(), slo.tail_limit_ms())
                    .unwrap_or(0.0);
                // The scaled site keeps the full blueprint simulation —
                // only the router's capacity cap shrinks with the share —
                // so its sustainable load is min(knee, share × capacity).
                // Scaling the knee itself would understate it and could
                // prune feasible candidates.
                sustainable += knee.min(share * blueprint.capacity_qps);
            }
        }
        Some(sustainable)
    }

    /// Horizon-wide shed estimate under the routing layer's semantics:
    /// a window's assignment is scaled by `min(1, capacity / peak)`, so
    /// a capacity-capped fleet sheds `mean × (1 − capacity/peak)` of
    /// each window whose peak exceeds it. Hourly windows track the
    /// demand curve at least as finely as any evaluation fidelity, so
    /// this estimate never exceeds the shed a real evaluation would
    /// measure — pruning on it is sound.
    fn demand_shed_fraction(&self, capacity_qps: f64) -> Option<f64> {
        let mut offered = 0.0;
        let mut shed = 0.0;
        for window in self.schedule.windows(24) {
            let mean = window.mean_qps();
            let peak = window.peak_qps();
            offered += mean;
            if peak > capacity_qps {
                shed += mean * (1.0 - (capacity_qps / peak).max(0.0));
            }
        }
        if offered > 0.0 {
            Some(shed / offered)
        } else {
            Some(0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::EvalCache;
    use crate::search::{evaluate_batch, search, SearchConfig};
    use crate::testutil::{flat_region, pixel_option};
    use junkyard_microsim::app::hotel_reservation;

    fn tiny_space() -> PlannerSpace {
        PlannerSpace::new(
            vec![CohortOption::empty(), pixel_option(2), pixel_option(4)],
            vec![flat_region("west", 120.0), flat_region("east", 420.0)],
        )
    }

    fn evaluator() -> FleetEvaluator {
        FleetEvaluator::new(
            tiny_space(),
            hotel_reservation(),
            NetworkModel::phone_wifi(),
            DiurnalSchedule::office_day(700.0),
            7,
        )
    }

    #[test]
    fn evaluation_measures_a_real_lifecycle_run() {
        let evaluator = evaluator();
        let candidate = CandidateDeployment::new(vec![1, 1], 1, 0, 0, 0);
        let evaluation = evaluator.evaluate(&candidate, Fidelity::coarse()).unwrap();
        assert!(evaluation.grams_per_request().unwrap() > 0.0);
        assert!(evaluation.worst_median_ms() > 0.0);
        assert!(evaluation.worst_p99_ms() >= evaluation.worst_tail_ms());
        assert_eq!(evaluation.devices(), 4);
        assert!(evaluation.requests() > 0.0);
    }

    #[test]
    fn evaluation_is_a_pure_function_of_candidate_and_fidelity() {
        let evaluator = evaluator();
        let candidate = CandidateDeployment::new(vec![2, 0], 0, 0, 0, 0);
        let first = evaluator.evaluate(&candidate, Fidelity::coarse()).unwrap();
        let second = evaluator.evaluate(&candidate, Fidelity::coarse()).unwrap();
        assert_eq!(first, second);
        // A different fidelity is a genuinely different measurement.
        let finer = evaluator
            .evaluate(&candidate, Fidelity::new(3, 2, 1.0, 0.0))
            .unwrap();
        assert_ne!(first, finer);
    }

    #[test]
    fn fallback_without_a_blueprint_fails_the_build() {
        let space = tiny_space().fallback_shares(vec![0.0, 1.0]);
        let evaluator = FleetEvaluator::new(
            space,
            hotel_reservation(),
            NetworkModel::phone_wifi(),
            DiurnalSchedule::office_day(300.0),
            7,
        );
        let candidate = CandidateDeployment::new(vec![0, 0], 0, 0, 0, 1);
        assert!(matches!(
            evaluator.evaluate(&candidate, Fidelity::coarse()),
            Err(EvalError::Build(_))
        ));
    }

    #[test]
    fn saturation_screen_prunes_undersized_candidates() {
        let evaluator = evaluator().with_saturation_screen();
        let slo = Slo::paper_default();
        // A two-phone site sustains ~600 QPS within the SLO, but the
        // office-day demand peaks at ~800 QPS: single-site candidates
        // are undersized and must be pruned before any lifecycle run.
        let big = CandidateDeployment::new(vec![2, 2], 1, 0, 0, 0);
        let big_cap = evaluator.sustainable_capacity_qps(&big, &slo).unwrap();
        let small = CandidateDeployment::new(vec![1, 0], 1, 0, 0, 0);
        let small_cap = evaluator.sustainable_capacity_qps(&small, &slo).unwrap();
        assert!(big_cap > small_cap);
        // The shed estimate orders with capacity and vanishes once the
        // fleet covers the whole curve.
        let small_shed = evaluator.demand_shed_fraction(small_cap).unwrap();
        let big_shed = evaluator.demand_shed_fraction(big_cap).unwrap();
        assert!(small_shed > slo.max_shed_fraction(), "shed {small_shed}");
        assert!(big_shed <= small_shed);
        assert_eq!(evaluator.demand_shed_fraction(1e9), Some(0.0));
        // The full search screens at least the empty-ish deployments out.
        let mut cache = EvalCache::new();
        let config = SearchConfig::new()
            .rungs(vec![Fidelity::coarse()])
            .local_search(2, 1, 1)
            .parallelism(2);
        let outcome = search(evaluator.space(), &evaluator, &slo, &config, &mut cache);
        assert!(outcome.screened_out() > 0, "screen never fired");
        for planned in outcome.frontier() {
            assert!(planned.evaluation().meets(&slo));
        }
    }

    #[test]
    fn leased_screen_caps_at_share_capacity_not_scaled_knee() {
        // A leased blueprint whose declared capacity is far beyond the
        // simulation's latency knee: the scaled site keeps the full sim,
        // so any share with share x capacity >= knee sustains the whole
        // knee. The old `share x knee` formula halved it.
        let space = tiny_space().fallback_shares(vec![0.0, 0.5, 1.0]);
        let leased_sim = {
            use junkyard_microsim::node::NodeSpec;
            use junkyard_microsim::placement::Placement;
            let app = hotel_reservation();
            let nodes = vec![NodeSpec::pixel_3a(0), NodeSpec::pixel_3a(1)];
            let placement = Placement::swarm_spread(&app, &nodes, 11).unwrap();
            Simulation::new(app, nodes, placement, NetworkModel::phone_wifi()).unwrap()
        };
        let evaluator = FleetEvaluator::new(
            space,
            hotel_reservation(),
            NetworkModel::phone_wifi(),
            DiurnalSchedule::office_day(700.0),
            7,
        )
        .leased(LeasedBlueprint::new(
            "oversized-lease",
            leased_sim,
            flat_region("gas", 420.0),
            1_000.0,
        ))
        .with_saturation_screen();
        let slo = Slo::paper_default();
        let leased_only =
            |share_index: usize| CandidateDeployment::new(vec![0, 0], 0, 0, 0, share_index);
        let full = evaluator
            .sustainable_capacity_qps(&leased_only(2), &slo)
            .unwrap();
        let half = evaluator
            .sustainable_capacity_qps(&leased_only(1), &slo)
            .unwrap();
        // The half-share site still runs the full simulation, so it
        // sustains min(knee, 500): exactly 500 whenever the knee clears
        // half the declared capacity. The old `share x knee` formula
        // reported strictly less than 500 for any knee below 1,000.
        assert!(full > 500.0, "knee {full} must clear half the capacity");
        assert!((half - 500.0).abs() < 1e-9, "half-share {half}");
    }

    #[test]
    fn cache_hits_reproduce_fresh_evaluations_bit_for_bit() {
        let evaluator = evaluator();
        let candidate = CandidateDeployment::new(vec![1, 2], 1, 0, 0, 0);
        let mut cache = EvalCache::new();
        let mut fresh = 0;
        let first = evaluate_batch(
            &mut cache,
            &evaluator,
            std::slice::from_ref(&candidate),
            Fidelity::coarse(),
            1,
            &mut fresh,
        );
        assert_eq!(fresh, 1);
        let cached = evaluate_batch(
            &mut cache,
            &evaluator,
            std::slice::from_ref(&candidate),
            Fidelity::coarse(),
            1,
            &mut fresh,
        );
        assert_eq!(fresh, 1, "second lookup is served from the cache");
        assert_eq!(first, cached);
        assert_eq!(cache.hits(), 1);
    }
}
