//! The typed point of the planner's search space: which cohort each grid
//! region hosts, how traffic is routed, how batteries are charged, how
//! failed devices are refilled and how much leased datacenter capacity
//! backs the fleet up.
//!
//! A candidate stores *indices* into a [`PlannerSpace`]'s option lists
//! rather than the options themselves, so candidates are tiny, trivially
//! comparable, and carry a stable [`fingerprint`](CandidateDeployment::fingerprint)
//! the evaluation cache and the deterministic search both key on.
//!
//! [`PlannerSpace`]: crate::space::PlannerSpace

use serde::{Deserialize, Serialize};

/// One fully-specified deployment: a cohort choice per grid region plus
/// the fleet-wide policy knobs, all as indices into the owning
/// [`PlannerSpace`](crate::space::PlannerSpace).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CandidateDeployment {
    /// Cohort-option index per region, in the space's region order.
    site_cohorts: Vec<usize>,
    /// Routing-policy index.
    routing: usize,
    /// Smart-charging battery-floor index.
    charge_floor: usize,
    /// Junkyard refill-lag index.
    refill_lag: usize,
    /// Leased-fallback share index.
    fallback: usize,
}

impl CandidateDeployment {
    /// Assembles a candidate from its option indices. Bounds against a
    /// concrete space are checked by
    /// [`PlannerSpace::contains`](crate::space::PlannerSpace::contains).
    ///
    /// # Panics
    ///
    /// Panics if no region assignment is given.
    #[must_use]
    pub fn new(
        site_cohorts: Vec<usize>,
        routing: usize,
        charge_floor: usize,
        refill_lag: usize,
        fallback: usize,
    ) -> Self {
        assert!(
            !site_cohorts.is_empty(),
            "a candidate needs at least one region assignment"
        );
        Self {
            site_cohorts,
            routing,
            charge_floor,
            refill_lag,
            fallback,
        }
    }

    /// Cohort-option index per region.
    #[must_use]
    pub fn site_cohorts(&self) -> &[usize] {
        &self.site_cohorts
    }

    /// Routing-policy index.
    #[must_use]
    pub fn routing(&self) -> usize {
        self.routing
    }

    /// Smart-charging battery-floor index.
    #[must_use]
    pub fn charge_floor(&self) -> usize {
        self.charge_floor
    }

    /// Junkyard refill-lag index.
    #[must_use]
    pub fn refill_lag(&self) -> usize {
        self.refill_lag
    }

    /// Leased-fallback share index.
    #[must_use]
    pub fn fallback(&self) -> usize {
        self.fallback
    }

    /// Replaces the cohort choice of one region (used by mutation).
    #[must_use]
    pub(crate) fn with_site_cohort(mut self, region: usize, cohort: usize) -> Self {
        self.site_cohorts[region] = cohort;
        self
    }

    /// Replaces the routing-policy index.
    #[must_use]
    pub(crate) fn with_routing(mut self, routing: usize) -> Self {
        self.routing = routing;
        self
    }

    /// Replaces the battery-floor index.
    #[must_use]
    pub(crate) fn with_charge_floor(mut self, floor: usize) -> Self {
        self.charge_floor = floor;
        self
    }

    /// Replaces the refill-lag index.
    #[must_use]
    pub(crate) fn with_refill_lag(mut self, lag: usize) -> Self {
        self.refill_lag = lag;
        self
    }

    /// Replaces the fallback-share index.
    #[must_use]
    pub(crate) fn with_fallback(mut self, fallback: usize) -> Self {
        self.fallback = fallback;
        self
    }

    /// A stable 64-bit fingerprint of the candidate: an FNV-1a-style fold
    /// over every index, identical across runs, platforms and worker
    /// counts. The evaluation cache keys on `(fingerprint, fidelity)`, so
    /// a mutation that revisits a previously-scored candidate costs
    /// nothing, and the search uses it as the final ranking tie-breaker
    /// so orderings never depend on evaluation timing.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |value: u64| {
            hash ^= value.wrapping_add(0x9e37_79b9_7f4a_7c15);
            hash = hash.wrapping_mul(PRIME);
        };
        eat(self.site_cohorts.len() as u64);
        for &cohort in &self.site_cohorts {
            eat(cohort as u64);
        }
        eat(self.routing as u64);
        eat(self.charge_floor as u64);
        eat(self.refill_lag as u64);
        eat(self.fallback as u64);
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_are_stable_and_field_sensitive() {
        let base = CandidateDeployment::new(vec![1, 2], 0, 1, 0, 2);
        assert_eq!(base.fingerprint(), base.clone().fingerprint());
        // Every field perturbation moves the fingerprint.
        let variants = [
            CandidateDeployment::new(vec![2, 1], 0, 1, 0, 2),
            CandidateDeployment::new(vec![1, 2], 1, 1, 0, 2),
            CandidateDeployment::new(vec![1, 2], 0, 0, 0, 2),
            CandidateDeployment::new(vec![1, 2], 0, 1, 1, 2),
            CandidateDeployment::new(vec![1, 2], 0, 1, 0, 0),
            CandidateDeployment::new(vec![1, 2, 0], 0, 1, 0, 2),
        ];
        for variant in variants {
            assert_ne!(base.fingerprint(), variant.fingerprint(), "{variant:?}");
        }
    }

    #[test]
    fn swapped_regions_are_distinct_candidates() {
        // Position matters: cohort 1 in region 0 is not cohort 1 in
        // region 1 (the regions have different grids).
        let a = CandidateDeployment::new(vec![0, 1], 0, 0, 0, 0);
        let b = CandidateDeployment::new(vec![1, 0], 0, 0, 0, 0);
        assert_ne!(a, b);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    #[should_panic(expected = "at least one region")]
    fn empty_region_assignment_panics() {
        let _ = CandidateDeployment::new(vec![], 0, 0, 0, 0);
    }
}
