//! Pareto-frontier extraction over the planner's three objectives:
//! carbon per request, extreme-tail latency and fleet size.
//!
//! All three are minimised. A point is kept when no other point is at
//! least as good on every objective and strictly better on one; exact
//! duplicates keep their first occurrence only, so the frontier is
//! deterministic for a deterministically-ordered input.

/// One point's objectives: `[gCO2e/request, p99 ms, device count]`.
pub type Objectives = [f64; 3];

/// Whether `a` dominates `b`: no worse everywhere, strictly better
/// somewhere.
#[must_use]
fn dominates(a: &Objectives, b: &Objectives) -> bool {
    let mut strictly_better = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Indices of the non-dominated points of `objectives`, sorted by the
/// objectives themselves (carbon first, then p99, then devices) with the
/// original index as the final tie-breaker.
#[must_use]
pub fn pareto_indices(objectives: &[Objectives]) -> Vec<usize> {
    let mut frontier: Vec<usize> = Vec::new();
    'candidates: for (i, point) in objectives.iter().enumerate() {
        for (j, other) in objectives.iter().enumerate() {
            if i == j {
                continue;
            }
            if dominates(other, point) {
                continue 'candidates;
            }
            // Exact duplicates: keep the earliest occurrence only.
            if other == point && j < i {
                continue 'candidates;
            }
        }
        frontier.push(i);
    }
    frontier.sort_by(|&a, &b| {
        objectives[a]
            .iter()
            .zip(objectives[b].iter())
            .map(|(x, y)| x.total_cmp(y))
            .find(|c| !c.is_eq())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominated_points_are_dropped() {
        let points = vec![
            [1.0, 50.0, 10.0], // best carbon
            [2.0, 20.0, 10.0], // best p99
            [3.0, 60.0, 4.0],  // smallest fleet
            [2.5, 55.0, 12.0], // dominated by the first point? no: carbon worse, p99 worse, devices worse than [1.0, 50, 10] -> dominated
            [1.5, 50.0, 10.0], // dominated by the first (carbon worse, rest equal)
        ];
        let frontier = pareto_indices(&points);
        assert_eq!(frontier, vec![0, 1, 2]);
    }

    #[test]
    fn duplicates_keep_the_first_occurrence() {
        let points = vec![[1.0, 10.0, 5.0], [1.0, 10.0, 5.0], [0.5, 20.0, 5.0]];
        let frontier = pareto_indices(&points);
        assert_eq!(frontier, vec![2, 0]);
    }

    #[test]
    fn incomparable_points_all_survive() {
        let points = vec![[1.0, 30.0, 8.0], [2.0, 20.0, 8.0], [3.0, 10.0, 8.0]];
        assert_eq!(pareto_indices(&points), vec![0, 1, 2]);
    }

    #[test]
    fn single_point_is_its_own_frontier() {
        assert_eq!(pareto_indices(&[[1.0, 1.0, 1.0]]), vec![0]);
        assert!(pareto_indices(&[]).is_empty());
    }
}
