//! Shared fixtures for the planner crate's unit tests.

use junkyard_carbon::units::{CarbonIntensity, TimeSpan};
use junkyard_devices::catalog;
use junkyard_fleet::site::GridRegion;
use junkyard_grid::trace::IntensityTrace;

use crate::space::CohortOption;

/// A one-day constant-intensity grid region.
pub fn flat_region(name: &str, grams: f64) -> GridRegion {
    GridRegion::new(
        name,
        IntensityTrace::constant(
            CarbonIntensity::from_grams_per_kwh(grams),
            TimeSpan::from_hours(1.0),
            TimeSpan::from_days(1.0),
        ),
    )
}

/// A uniform Pixel 3A cohort at 300 requests/second per slot.
pub fn pixel_option(count: usize) -> CohortOption {
    CohortOption::uniform(catalog::pixel_3a(), count, 300.0)
}
