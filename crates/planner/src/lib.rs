//! SLO-constrained, carbon-minimal fleet provisioning search.
//!
//! The paper's Figure 7 compares a handful of hand-picked deployments;
//! a real junkyard-cloudlet operator faces the *search* problem: given a
//! demand trace, a latency SLO, a device catalog and a set of grid
//! regions, which deployment minimises gCO2e per request? This crate
//! answers it by driving the compiled microsim / fleet / lifecycle stack
//! as a black-box evaluator:
//!
//! * [`candidate`] — the typed search point: per-region cohort choice,
//!   routing policy, smart-charging floor, junkyard refill lag and an
//!   optional leased-datacenter fallback share, with a stable
//!   fingerprint the cache and the deterministic ranking key on.
//! * [`space`] — the option lists, deterministic enumeration and the
//!   seeded single-dimension mutation operator.
//! * [`slo`] — the hard constraint: median/tail latency bounds and a
//!   shed ceiling; violators are discarded regardless of carbon.
//! * [`evaluator`] — the black-box contract ([`Evaluator`]), the
//!   fidelity ladder ([`Fidelity`]) and the memoised
//!   `(fingerprint, fidelity)` cache that makes revisits free.
//! * [`fleet_eval`] — the concrete evaluator: candidates become
//!   [`LifecycleSim`](junkyard_fleet::lifecycle::LifecycleSim) runs,
//!   with a saturation pre-screen built on
//!   [`LatencyCurve::max_sustainable_qps`](junkyard_microsim::sweep::LatencyCurve::max_sustainable_qps).
//! * [`search`] — successive halving over fidelity plus seeded local
//!   search, fanning candidate evaluations across scoped worker threads
//!   with the workspace's order-preserving-slot pattern: results,
//!   frontier and even cache-hit counts are bit-identical at any worker
//!   count.
//! * [`pareto`] — the reported frontier: gCO2e/request versus p99
//!   latency versus fleet size, plus the carbon argmin.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod candidate;
pub mod evaluator;
pub mod fleet_eval;
pub mod pareto;
pub mod search;
pub mod slo;
pub mod space;
#[cfg(test)]
pub(crate) mod testutil;

pub use candidate::CandidateDeployment;
pub use evaluator::{EvalCache, EvalError, Evaluation, Evaluator, Fidelity};
pub use fleet_eval::{FleetEvaluator, LeasedBlueprint};
pub use pareto::pareto_indices;
pub use search::{evaluate_batch, search, PlannedDeployment, SearchConfig, SearchOutcome};
pub use slo::Slo;
pub use space::{CohortOption, PlannerSpace};
