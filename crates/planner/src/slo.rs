//! The service-level objective a deployment must meet to be admitted to
//! the planner's frontier.
//!
//! The SLO is a *hard constraint*, not an objective: a candidate that
//! violates any bound is discarded no matter how little carbon it emits.
//! The bounds mirror the paper's Figure 7 saturation criterion (median
//! and 90th-percentile latency ceilings) plus a shed ceiling so a
//! deployment cannot "meet" the latency bounds by refusing traffic.

use serde::{Deserialize, Serialize};

use crate::evaluator::Evaluation;

/// Latency and availability bounds a candidate deployment must satisfy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Slo {
    median_limit_ms: f64,
    tail_limit_ms: f64,
    max_shed_fraction: f64,
}

impl Slo {
    /// Creates an SLO with the given median and tail (90th percentile)
    /// latency ceilings in milliseconds and no tolerance for shed
    /// traffic.
    ///
    /// # Panics
    ///
    /// Panics if either bound is not strictly positive or the tail bound
    /// is below the median bound.
    #[must_use]
    pub fn new(median_limit_ms: f64, tail_limit_ms: f64) -> Self {
        assert!(median_limit_ms > 0.0, "median bound must be positive");
        assert!(
            tail_limit_ms >= median_limit_ms,
            "tail bound cannot be below the median bound"
        );
        Self {
            median_limit_ms,
            tail_limit_ms,
            max_shed_fraction: 0.0,
        }
    }

    /// The paper's Figure 7 saturation criterion: median ≤ 100 ms, tail
    /// ≤ 200 ms, with a 1 % shed ceiling for transient outage days.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(100.0, 200.0).shed_ceiling(0.01)
    }

    /// Sets the fraction of offered demand the deployment may shed (for
    /// example during device-failure outages) and still count as
    /// feasible.
    ///
    /// # Panics
    ///
    /// Panics if the ceiling is outside `[0, 1]`.
    #[must_use]
    pub fn shed_ceiling(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "shed ceiling must be in [0, 1]"
        );
        self.max_shed_fraction = fraction;
        self
    }

    /// Median latency ceiling, ms.
    #[must_use]
    pub fn median_limit_ms(&self) -> f64 {
        self.median_limit_ms
    }

    /// Tail (90th percentile) latency ceiling, ms.
    #[must_use]
    pub fn tail_limit_ms(&self) -> f64 {
        self.tail_limit_ms
    }

    /// Highest tolerated shed fraction of offered demand.
    #[must_use]
    pub fn max_shed_fraction(&self) -> f64 {
        self.max_shed_fraction
    }

    /// Whether an evaluation satisfies every bound. A deployment that
    /// served nothing at all (no requests) is never admitted: carbon per
    /// request is undefined there.
    #[must_use]
    pub fn admits(&self, evaluation: &Evaluation) -> bool {
        evaluation.grams_per_request().is_some()
            && evaluation.worst_median_ms() <= self.median_limit_ms
            && evaluation.worst_tail_ms() <= self.tail_limit_ms
            && evaluation.shed_fraction() <= self.max_shed_fraction + 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(median: f64, tail: f64, shed: f64) -> Evaluation {
        Evaluation::for_tests(Some(0.5), median, tail, tail * 1.5, shed, 10)
    }

    #[test]
    fn admits_only_within_every_bound() {
        let slo = Slo::new(50.0, 100.0).shed_ceiling(0.01);
        assert!(slo.admits(&eval(40.0, 90.0, 0.0)));
        assert!(!slo.admits(&eval(60.0, 90.0, 0.0)), "median violation");
        assert!(!slo.admits(&eval(40.0, 120.0, 0.0)), "tail violation");
        assert!(!slo.admits(&eval(40.0, 90.0, 0.05)), "shed violation");
        // Exactly on the bounds still passes.
        assert!(slo.admits(&eval(50.0, 100.0, 0.01)));
    }

    #[test]
    fn deployments_that_served_nothing_are_never_admitted() {
        let slo = Slo::new(50.0, 100.0).shed_ceiling(1.0);
        let starved = Evaluation::for_tests(None, 0.0, 0.0, 0.0, 1.0, 0);
        assert!(!slo.admits(&starved));
    }

    #[test]
    #[should_panic(expected = "tail bound cannot be below")]
    fn inverted_bounds_panic() {
        let _ = Slo::new(100.0, 50.0);
    }
}
