//! The black-box evaluation layer: what it costs to score one candidate,
//! at what fidelity, and the memo cache that makes revisits free.
//!
//! The search engine never builds simulations itself — it hands
//! candidates to an [`Evaluator`] and receives [`Evaluation`]s. An
//! evaluation must be a *pure function* of `(candidate, fidelity)`: the
//! successive-halving rungs and the mutation loop both rely on cached
//! results being bit-identical to fresh ones, and the parallel fan-out
//! relies on results not depending on which worker computed them.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::candidate::CandidateDeployment;
use crate::slo::Slo;

/// How much simulated time a candidate is scored over — the
/// successive-halving resource axis. Coarse rungs run a couple of days
/// at few windows; survivors earn longer horizons and finer slices.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fidelity {
    horizon_days: usize,
    windows_per_day: usize,
    sim_slice_s: f64,
    warmup_s: f64,
}

impl Fidelity {
    /// Creates a fidelity level.
    ///
    /// # Panics
    ///
    /// Panics if the horizon or window count is zero, or the slice and
    /// warm-up are not whole seconds (the lifecycle engine buckets
    /// utilisation per second) with a strictly positive slice.
    #[must_use]
    pub fn new(
        horizon_days: usize,
        windows_per_day: usize,
        sim_slice_s: f64,
        warmup_s: f64,
    ) -> Self {
        assert!(horizon_days > 0, "fidelity needs at least one day");
        assert!(
            windows_per_day > 0,
            "fidelity needs at least one window per day"
        );
        assert!(
            sim_slice_s > 0.0 && sim_slice_s.fract() == 0.0,
            "slice must be a positive whole number of seconds"
        );
        assert!(
            warmup_s >= 0.0 && warmup_s.fract() == 0.0,
            "warm-up must be a whole number of seconds"
        );
        Self {
            horizon_days,
            windows_per_day,
            sim_slice_s,
            warmup_s,
        }
    }

    /// The cheapest useful score: two days, two routing windows per day,
    /// one-second slices, no warm-up.
    #[must_use]
    pub fn coarse() -> Self {
        Self::new(2, 2, 1.0, 0.0)
    }

    /// A week at four windows per day with a warm-up second.
    #[must_use]
    pub fn medium() -> Self {
        Self::new(7, 4, 1.0, 1.0)
    }

    /// Four weeks at six windows per day — long enough for battery wear
    /// and failures to register in the ranking.
    #[must_use]
    pub fn fine() -> Self {
        Self::new(28, 6, 2.0, 1.0)
    }

    /// Simulated days.
    #[must_use]
    pub fn horizon_days(&self) -> usize {
        self.horizon_days
    }

    /// Routing/accounting windows per day.
    #[must_use]
    pub fn windows_per_day(&self) -> usize {
        self.windows_per_day
    }

    /// Measured seconds of each microsim slice.
    #[must_use]
    pub fn sim_slice_s(&self) -> f64 {
        self.sim_slice_s
    }

    /// Warm-up seconds excluded from each slice.
    #[must_use]
    pub fn warmup_s(&self) -> f64 {
        self.warmup_s
    }

    /// A stable key for cache maps: whole-second slices and warm-ups
    /// make the float fields exactly representable as integers.
    #[must_use]
    pub fn key(&self) -> u64 {
        let mut key = self.horizon_days as u64;
        key = key
            .wrapping_mul(0x1_0001)
            .wrapping_add(self.windows_per_day as u64);
        key = key
            .wrapping_mul(0x1_0001)
            .wrapping_add(self.sim_slice_s as u64);
        key.wrapping_mul(0x1_0001)
            .wrapping_add(self.warmup_s as u64)
    }
}

/// What one candidate scored at one fidelity: the carbon objective, the
/// SLO-relevant latencies and shed, and the frontier's secondary axes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    grams_per_request: Option<f64>,
    worst_median_ms: f64,
    worst_tail_ms: f64,
    worst_p99_ms: f64,
    shed_fraction: f64,
    requests: f64,
    total_carbon_kg: f64,
    devices: usize,
}

impl Evaluation {
    /// Assembles an evaluation from measured results.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        grams_per_request: Option<f64>,
        worst_median_ms: f64,
        worst_tail_ms: f64,
        worst_p99_ms: f64,
        shed_fraction: f64,
        requests: f64,
        total_carbon_kg: f64,
        devices: usize,
    ) -> Self {
        Self {
            grams_per_request,
            worst_median_ms,
            worst_tail_ms,
            worst_p99_ms,
            shed_fraction,
            requests,
            total_carbon_kg,
            devices,
        }
    }

    /// A shorthand constructor for unit tests.
    #[cfg(test)]
    #[must_use]
    pub(crate) fn for_tests(
        grams_per_request: Option<f64>,
        median: f64,
        tail: f64,
        p99: f64,
        shed: f64,
        devices: usize,
    ) -> Self {
        Self::new(
            grams_per_request,
            median,
            tail,
            p99,
            shed,
            1_000.0,
            1.0,
            devices,
        )
    }

    /// The objective: amortised grams of CO2e per served request, or
    /// `None` when the deployment served nothing.
    #[must_use]
    pub fn grams_per_request(&self) -> Option<f64> {
        self.grams_per_request
    }

    /// Worst measured median latency across the horizon, ms.
    #[must_use]
    pub fn worst_median_ms(&self) -> f64 {
        self.worst_median_ms
    }

    /// Worst measured tail (90th percentile) latency, ms.
    #[must_use]
    pub fn worst_tail_ms(&self) -> f64 {
        self.worst_tail_ms
    }

    /// Worst measured 99th-percentile latency, ms — a frontier axis.
    #[must_use]
    pub fn worst_p99_ms(&self) -> f64 {
        self.worst_p99_ms
    }

    /// Fraction of offered demand that was shed.
    #[must_use]
    pub fn shed_fraction(&self) -> f64 {
        self.shed_fraction
    }

    /// Requests served over the evaluated horizon.
    #[must_use]
    pub fn requests(&self) -> f64 {
        self.requests
    }

    /// Total carbon emitted over the evaluated horizon, kg.
    #[must_use]
    pub fn total_carbon_kg(&self) -> f64 {
        self.total_carbon_kg
    }

    /// Phones the candidate provisions — a frontier axis.
    #[must_use]
    pub fn devices(&self) -> usize {
        self.devices
    }

    /// Whether this evaluation satisfies `slo` (see [`Slo::admits`]).
    #[must_use]
    pub fn meets(&self, slo: &Slo) -> bool {
        slo.admits(self)
    }
}

/// Why a candidate could not be scored. Failures are deterministic
/// properties of the candidate (a cohort the placement cannot fit, a
/// workload the application does not define), so they are cached like
/// successes and simply excluded from ranking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EvalError {
    /// The candidate's deployment could not be assembled.
    Build(String),
    /// The simulation rejected the run.
    Sim(String),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Build(why) => write!(f, "candidate build failed: {why}"),
            EvalError::Sim(why) => write!(f, "candidate simulation failed: {why}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// A black-box scorer of candidate deployments.
///
/// `Sync` because the search engine fans evaluations across scoped
/// worker threads. Implementations must be pure: the same
/// `(candidate, fidelity)` pair must always produce the same result.
pub trait Evaluator: Sync {
    /// Scores one candidate at one fidelity.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] when the candidate cannot be assembled or
    /// simulated; the search treats such candidates as infeasible.
    fn evaluate(
        &self,
        candidate: &CandidateDeployment,
        fidelity: Fidelity,
    ) -> Result<Evaluation, EvalError>;

    /// A cheap upper bound on the offered load the candidate can serve
    /// within the SLO's latency bounds, if the evaluator can estimate
    /// one (for example from per-cohort saturation sweeps). `None` means
    /// "unknown — do not prune".
    fn sustainable_capacity_qps(&self, candidate: &CandidateDeployment, slo: &Slo) -> Option<f64> {
        let _ = (candidate, slo);
        None
    }

    /// The fraction of the horizon's offered demand that would be shed
    /// if the fleet could sustain at most `capacity_qps`, if the
    /// evaluator can estimate one from its demand curve. Used together
    /// with
    /// [`sustainable_capacity_qps`](Evaluator::sustainable_capacity_qps)
    /// to pre-screen candidates whose forced shed would violate the
    /// SLO's ceiling: a candidate that only sheds a sliver of demand at
    /// the daily peak must *not* be pruned. `None` means "unknown — do
    /// not prune".
    fn demand_shed_fraction(&self, capacity_qps: f64) -> Option<f64> {
        let _ = capacity_qps;
        None
    }
}

/// The memoised evaluation store, keyed by `(candidate fingerprint,
/// fidelity key)`. All bookkeeping happens serially between parallel
/// batches (see the search engine), so hit/miss counts — not just cached
/// values — are identical at any worker count.
#[derive(Debug, Default)]
pub struct EvalCache {
    // The cache is only ever probed by exact (fingerprint, fidelity)
    // key and never iterated, so hash order is unobservable.
    entries: HashMap<(u64, u64), Result<Evaluation, EvalError>>,
    hits: u64,
    misses: u64,
}

impl EvalCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a previously-scored `(candidate, fidelity)` pair,
    /// counting the lookup as a hit or miss.
    pub fn lookup(
        &mut self,
        candidate: &CandidateDeployment,
        fidelity: Fidelity,
    ) -> Option<Result<Evaluation, EvalError>> {
        let found = self.entries.get(&(candidate.fingerprint(), fidelity.key()));
        if found.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        found.cloned()
    }

    /// Stores a freshly-computed result.
    pub fn insert(
        &mut self,
        candidate: &CandidateDeployment,
        fidelity: Fidelity,
        result: Result<Evaluation, EvalError>,
    ) {
        self.entries
            .insert((candidate.fingerprint(), fidelity.key()), result);
    }

    /// Lookups served from the cache.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that required a fresh evaluation.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate over all lookups (0 when nothing was looked up).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total > 0 {
            self.hits as f64 / total as f64
        } else {
            0.0
        }
    }

    /// Distinct `(candidate, fidelity)` results stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been stored yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fidelity_keys_distinguish_every_level() {
        let levels = [
            Fidelity::coarse(),
            Fidelity::medium(),
            Fidelity::fine(),
            Fidelity::new(2, 2, 2.0, 0.0),
            Fidelity::new(2, 4, 1.0, 0.0),
            Fidelity::new(4, 2, 1.0, 0.0),
            Fidelity::new(2, 2, 1.0, 1.0),
        ];
        for (i, a) in levels.iter().enumerate() {
            for (j, b) in levels.iter().enumerate().skip(i + 1) {
                assert_ne!(a.key(), b.key(), "levels {i} and {j} collide");
            }
        }
    }

    #[test]
    fn cache_counts_hits_and_misses_deterministically() {
        let mut cache = EvalCache::new();
        let candidate = CandidateDeployment::new(vec![0], 0, 0, 0, 0);
        let fidelity = Fidelity::coarse();
        assert!(cache.lookup(&candidate, fidelity).is_none());
        let result = Ok(Evaluation::for_tests(Some(1.0), 5.0, 9.0, 12.0, 0.0, 4));
        cache.insert(&candidate, fidelity, result.clone());
        assert_eq!(cache.lookup(&candidate, fidelity), Some(result));
        // A finer fidelity is a distinct entry.
        assert!(cache.lookup(&candidate, Fidelity::fine()).is_none());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
        assert!((cache.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    #[should_panic(expected = "whole number of seconds")]
    fn fractional_slices_panic() {
        let _ = Fidelity::new(1, 1, 0.5, 0.0);
    }
}
