//! The deterministic search engine: SLO pre-screen, successive halving
//! over simulation fidelity, and a seeded local-search mutation loop.
//!
//! Candidates are scored in *batches*. Each batch is composed serially
//! against the [`EvalCache`] (so hit and miss counts are reproducible),
//! deduplicated by fingerprint, and only the genuinely new
//! `(candidate, fidelity)` pairs fan out across scoped worker threads —
//! each writing into a pre-assigned slot, the same order-preserving
//! pattern the sweep, fleet and lifecycle layers use. Because every
//! evaluation is a pure function of its inputs, the whole search is
//! bit-identical at any worker count.

use std::collections::HashMap;
use std::thread;

use serde::{Deserialize, Serialize};

use junkyard_microsim::sweep::decorrelate_seed;
use junkyard_obs::{EventKind, NoopRecorder, Recorder, TraceEvent};

use crate::candidate::CandidateDeployment;
use crate::evaluator::{EvalCache, EvalError, Evaluation, Evaluator, Fidelity};
use crate::pareto::pareto_indices;
use crate::slo::Slo;
use crate::space::PlannerSpace;

/// Tunables of one planner search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchConfig {
    seed: u64,
    rungs: Vec<Fidelity>,
    survivor_fraction: f64,
    min_survivors: usize,
    elites: usize,
    mutation_rounds: usize,
    mutations_per_elite: usize,
    parallelism: Option<usize>,
    pinned: Vec<CandidateDeployment>,
}

impl SearchConfig {
    /// Defaults: seed 42, a coarse→medium successive-halving ladder,
    /// half the population surviving each rung (at least 4), 4 elites
    /// with 2 mutation rounds of 2 mutations each, machine parallelism.
    #[must_use]
    pub fn new() -> Self {
        Self {
            seed: 42,
            rungs: vec![Fidelity::coarse(), Fidelity::medium()],
            survivor_fraction: 0.5,
            min_survivors: 4,
            elites: 4,
            mutation_rounds: 2,
            mutations_per_elite: 2,
            parallelism: None,
            pinned: Vec::new(),
        }
    }

    /// Pins a candidate: it bypasses the pre-screen and survives every
    /// halving rung, so it is always scored at the final fidelity and —
    /// when feasible — always eligible for the frontier and the argmin.
    /// Pin a hand-built incumbent to make "the search can only match or
    /// beat it" hold by construction rather than by luck of the coarse
    /// rungs.
    #[must_use]
    pub fn pin(mut self, candidate: CandidateDeployment) -> Self {
        self.pinned.push(candidate);
        self
    }

    /// Sets the root seed; mutation draws are mixed from it with
    /// [`decorrelate_seed`].
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the successive-halving fidelity ladder, coarsest first. The
    /// last rung is the *final* fidelity the frontier is reported at.
    ///
    /// # Panics
    ///
    /// Panics if empty.
    #[must_use]
    pub fn rungs(mut self, rungs: Vec<Fidelity>) -> Self {
        assert!(!rungs.is_empty(), "the search needs at least one rung");
        self.rungs = rungs;
        self
    }

    /// Sets the fraction of each rung's population advancing to the next
    /// rung.
    ///
    /// # Panics
    ///
    /// Panics if outside `(0, 1]`.
    #[must_use]
    pub fn survivor_fraction(mut self, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "survivor fraction must be in (0, 1]"
        );
        self.survivor_fraction = fraction;
        self
    }

    /// Sets the floor on survivors per rung.
    #[must_use]
    pub fn min_survivors(mut self, survivors: usize) -> Self {
        self.min_survivors = survivors.max(1);
        self
    }

    /// Configures the local-search loop: `elites` candidates are kept,
    /// each proposing `mutations_per_elite` neighbours per round for
    /// `rounds` rounds. Zero rounds disables local search.
    #[must_use]
    pub fn local_search(
        mut self,
        elites: usize,
        rounds: usize,
        mutations_per_elite: usize,
    ) -> Self {
        self.elites = elites.max(1);
        self.mutation_rounds = rounds;
        self.mutations_per_elite = mutations_per_elite.max(1);
        self
    }

    /// Caps the worker threads; `1` forces a serial search.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    #[must_use]
    pub fn parallelism(mut self, workers: usize) -> Self {
        assert!(workers > 0, "the search needs at least one worker");
        self.parallelism = Some(workers);
        self
    }

    /// The fidelity the frontier is reported at (the last rung).
    #[must_use]
    pub fn final_fidelity(&self) -> Fidelity {
        *self.rungs.last().expect("rungs are never empty")
    }

    fn workers(&self) -> usize {
        self.parallelism
            .unwrap_or_else(|| thread::available_parallelism().map_or(1, std::num::NonZero::get))
            .max(1)
    }
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// One scored deployment of the outcome: the candidate, its final-
/// fidelity evaluation and a human-readable label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlannedDeployment {
    candidate: CandidateDeployment,
    evaluation: Evaluation,
    label: String,
}

impl PlannedDeployment {
    /// The deployment's point in the search space.
    #[must_use]
    pub fn candidate(&self) -> &CandidateDeployment {
        &self.candidate
    }

    /// The final-fidelity evaluation.
    #[must_use]
    pub fn evaluation(&self) -> &Evaluation {
        &self.evaluation
    }

    /// Human-readable description of the deployment.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Assembles a planned deployment from its parts — for callers that
    /// score extra candidates (for example a hand-built baseline)
    /// outside the search proper.
    #[must_use]
    pub fn from_parts(
        candidate: CandidateDeployment,
        evaluation: Evaluation,
        label: String,
    ) -> Self {
        Self {
            candidate,
            evaluation,
            label,
        }
    }
}

/// What a search produced: the SLO-satisfying Pareto frontier, the
/// carbon argmin, and the bookkeeping the perf report tracks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    frontier: Vec<PlannedDeployment>,
    best: Option<PlannedDeployment>,
    final_fidelity: Fidelity,
    candidates_enumerated: usize,
    screened_out: usize,
    rung_populations: Vec<usize>,
    fresh_evaluations: u64,
    cache_hits: u64,
    cache_misses: u64,
}

impl SearchOutcome {
    /// The SLO-satisfying Pareto frontier over (gCO2e/request, p99 ms,
    /// device count), sorted by carbon per request.
    #[must_use]
    pub fn frontier(&self) -> &[PlannedDeployment] {
        &self.frontier
    }

    /// The feasible deployment with the lowest carbon per request, if
    /// any candidate met the SLO.
    #[must_use]
    pub fn best(&self) -> Option<&PlannedDeployment> {
        self.best.as_ref()
    }

    /// The fidelity the frontier was scored at.
    #[must_use]
    pub fn final_fidelity(&self) -> Fidelity {
        self.final_fidelity
    }

    /// Valid candidates the space enumerated.
    #[must_use]
    pub fn candidates_enumerated(&self) -> usize {
        self.candidates_enumerated
    }

    /// Candidates pruned by the saturation pre-screen before any
    /// simulation ran.
    #[must_use]
    pub fn screened_out(&self) -> usize {
        self.screened_out
    }

    /// Population size at each successive-halving rung.
    #[must_use]
    pub fn rung_populations(&self) -> &[usize] {
        &self.rung_populations
    }

    /// Simulations actually run (cache misses that were computed).
    #[must_use]
    pub fn fresh_evaluations(&self) -> u64 {
        self.fresh_evaluations
    }

    /// Cache lookups served without a simulation.
    #[must_use]
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Cache lookups that required a simulation.
    #[must_use]
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses
    }

    /// Cache hit rate over the whole search.
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total > 0 {
            self.cache_hits as f64 / total as f64
        } else {
            0.0
        }
    }
}

/// Scores `batch` at `fidelity`, serving repeats from `cache` and
/// fanning only the genuinely new candidates across worker threads.
/// Batch composition, cache bookkeeping and result placement are all
/// serial, so outcomes and counters are identical at any worker count.
pub fn evaluate_batch<E: Evaluator + ?Sized>(
    cache: &mut EvalCache,
    evaluator: &E,
    batch: &[CandidateDeployment],
    fidelity: Fidelity,
    workers: usize,
    fresh_evaluations: &mut u64,
) -> Vec<Result<Evaluation, EvalError>> {
    let mut slots: Vec<Option<Result<Evaluation, EvalError>>> =
        (0..batch.len()).map(|_| None).collect();
    // Serial pass: serve cached results, dedup the rest by fingerprint.
    let mut pending: Vec<usize> = Vec::new();
    // Fingerprints are probed by key; batch order alone decides
    // result placement.
    let mut pending_of: HashMap<u64, usize> = HashMap::new();
    let mut followers: Vec<(usize, usize)> = Vec::new();
    for (index, candidate) in batch.iter().enumerate() {
        if let Some(result) = cache.lookup(candidate, fidelity) {
            slots[index] = Some(result);
            continue;
        }
        let position = *pending_of
            .entry(candidate.fingerprint())
            .or_insert_with(|| {
                pending.push(index);
                pending.len() - 1
            });
        followers.push((index, position));
    }

    // Parallel pass: strided order-preserving slots over the pending set.
    let results = run_pending(evaluator, batch, &pending, fidelity, workers);
    *fresh_evaluations += pending.len() as u64;

    // Serial pass: persist and place.
    for (&batch_index, result) in pending.iter().zip(&results) {
        cache.insert(&batch[batch_index], fidelity, result.clone());
    }
    for (slot, position) in followers {
        slots[slot] = Some(results[position].clone());
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every batch slot is filled"))
        .collect()
}

/// Evaluates the deduplicated pending set across scoped worker threads.
fn run_pending<E: Evaluator + ?Sized>(
    evaluator: &E,
    batch: &[CandidateDeployment],
    pending: &[usize],
    fidelity: Fidelity,
    workers: usize,
) -> Vec<Result<Evaluation, EvalError>> {
    let n = pending.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.min(n).max(1);
    let mut slots: Vec<Option<Result<Evaluation, EvalError>>> = (0..n).map(|_| None).collect();
    if workers == 1 {
        for (slot, &batch_index) in slots.iter_mut().zip(pending) {
            *slot = Some(evaluator.evaluate(&batch[batch_index], fidelity));
        }
    } else {
        type PendingSlot<'s> = (usize, &'s mut Option<Result<Evaluation, EvalError>>);
        let mut shares: Vec<Vec<PendingSlot<'_>>> = (0..workers).map(|_| Vec::new()).collect();
        for (index, (slot, &batch_index)) in slots.iter_mut().zip(pending).enumerate() {
            shares[index % workers].push((batch_index, slot));
        }
        thread::scope(|scope| {
            for share in shares {
                scope.spawn(move || {
                    for (batch_index, slot) in share {
                        *slot = Some(evaluator.evaluate(&batch[batch_index], fidelity));
                    }
                });
            }
        });
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every pending slot is filled by its worker"))
        .collect()
}

/// Ranking key for successive halving: feasible candidates first by
/// carbon, then infeasible-but-measurable ones (they may pass at a finer
/// fidelity), with the fingerprint as a total-order tie-breaker.
fn rank_key(result: &Result<Evaluation, EvalError>, slo: &Slo) -> (u8, f64) {
    match result {
        Ok(evaluation) if evaluation.meets(slo) => {
            (0, evaluation.grams_per_request().unwrap_or(f64::INFINITY))
        }
        Ok(evaluation) => (1, evaluation.grams_per_request().unwrap_or(f64::INFINITY)),
        Err(_) => (2, f64::INFINITY),
    }
}

/// Runs the full planner search over `space` with `evaluator` as the
/// black box, under `slo` as a hard constraint.
///
/// The phases, in order:
///
/// 1. **Enumerate** every valid candidate of the space.
/// 2. **Screen** out candidates whose SLO-sustainable capacity (per the
///    evaluator's saturation estimate) would force more shed than the
///    SLO's ceiling over the whole horizon; pinned candidates bypass
///    the screen and survive every rung.
/// 3. **Successive halving**: score the survivors at each fidelity rung,
///    keeping the best fraction for the next (finer, costlier) rung.
/// 4. **Local search**: mutate the elites for a few rounds at the final
///    fidelity; the evaluation cache makes revisited neighbours free.
/// 5. Report the SLO-satisfying **Pareto frontier** over
///    (gCO2e/request, p99, devices) and the carbon argmin.
///
/// Passing the cache in lets a caller score extra candidates afterwards
/// (for example a hand-built baseline) without re-simulating anything
/// the search already touched.
#[must_use]
pub fn search<E: Evaluator + ?Sized>(
    space: &PlannerSpace,
    evaluator: &E,
    slo: &Slo,
    config: &SearchConfig,
    cache: &mut EvalCache,
) -> SearchOutcome {
    search_with(space, evaluator, slo, config, cache, &mut NoopRecorder)
}

/// [`search`] with planner telemetry: pre-screen prune decisions (with
/// the projected shed that condemned each candidate), rung entry
/// populations and promotions, and per-batch cache hit/miss counts are
/// recorded into `recorder`. All hooks fire on the serial composition
/// side — the evaluation fan-out is untouched and the returned
/// [`SearchOutcome`] is bit-identical to [`search`] for any recorder.
/// The trace's time axis is the rung index (the search has no simulated
/// clock of its own).
#[must_use]
pub fn search_with<E: Evaluator + ?Sized, R: Recorder>(
    space: &PlannerSpace,
    evaluator: &E,
    slo: &Slo,
    config: &SearchConfig,
    cache: &mut EvalCache,
    recorder: &mut R,
) -> SearchOutcome {
    let workers = config.workers();
    let mut fresh_evaluations = 0u64;
    // The cache may arrive pre-warmed (the doc above invites reuse);
    // report this search's own traffic, not the cache's lifetime totals.
    let hits_at_entry = cache.hits();
    let misses_at_entry = cache.misses();

    // Phase 1+2: enumerate and screen. Pruning is on the *horizon-wide*
    // shed fraction a candidate's SLO-sustainable capacity would force —
    // a candidate that sheds only a sliver of demand at the daily peak
    // stays in — and pinned candidates bypass the screen entirely.
    let population = space.enumerate();
    let candidates_enumerated = population.len();
    let is_pinned = |candidate: &CandidateDeployment| {
        config
            .pinned
            .iter()
            .any(|p| p.fingerprint() == candidate.fingerprint())
    };
    let mut screened: Vec<CandidateDeployment> = Vec::with_capacity(population.len());
    let mut screened_out = 0usize;
    for candidate in population {
        let projected_shed = if is_pinned(&candidate) {
            None
        } else {
            evaluator
                .sustainable_capacity_qps(&candidate, slo)
                .and_then(|sustainable| evaluator.demand_shed_fraction(sustainable))
        };
        let undersized = projected_shed.is_some_and(|shed| shed > slo.max_shed_fraction() + 1e-9);
        if undersized {
            screened_out += 1;
            if recorder.enabled() {
                recorder.event(
                    TraceEvent::new(
                        EventKind::Prune,
                        0.0,
                        &format!("{:016x}", candidate.fingerprint()),
                        projected_shed.unwrap_or(0.0),
                    )
                    .with_detail("screen: projected shed above the SLO ceiling"),
                );
            }
        } else {
            screened.push(candidate);
        }
    }
    // Pinned candidates outside the enumerable population (or dropped as
    // invalid) still deserve a score if the space can express them.
    for pinned in &config.pinned {
        if space.is_valid(pinned)
            && !screened
                .iter()
                .any(|c| c.fingerprint() == pinned.fingerprint())
        {
            screened.push(pinned.clone());
        }
    }

    // Phase 3: successive halving over the fidelity ladder.
    let mut rung_populations = Vec::with_capacity(config.rungs.len());
    let mut rung_pop = screened;
    let mut final_results: Vec<Result<Evaluation, EvalError>> = Vec::new();
    for (rung_index, &fidelity) in config.rungs.iter().enumerate() {
        rung_populations.push(rung_pop.len());
        if recorder.enabled() {
            recorder.event(
                TraceEvent::new(
                    EventKind::Rung,
                    rung_index as f64,
                    &format!("rung{rung_index}"),
                    rung_pop.len() as f64,
                )
                .with_detail("population at rung entry"),
            );
        }
        let hits_before = cache.hits();
        let misses_before = cache.misses();
        let results = evaluate_batch(
            cache,
            evaluator,
            &rung_pop,
            fidelity,
            workers,
            &mut fresh_evaluations,
        );
        if recorder.enabled() {
            recorder.count(EventKind::CacheHit, cache.hits() - hits_before);
            recorder.count(EventKind::CacheMiss, cache.misses() - misses_before);
        }
        if rung_index + 1 == config.rungs.len() {
            final_results = results;
            break;
        }
        // Rank and keep the best fraction; failed builds never advance.
        let mut order: Vec<usize> = (0..rung_pop.len())
            .filter(|&i| results[i].is_ok())
            .collect();
        order.sort_by(|&a, &b| {
            let ka = rank_key(&results[a], slo);
            let kb = rank_key(&results[b], slo);
            ka.partial_cmp(&kb)
                .expect("rank keys are comparable")
                .then_with(|| rung_pop[a].fingerprint().cmp(&rung_pop[b].fingerprint()))
        });
        let keep = ((rung_pop.len() as f64 * config.survivor_fraction).ceil() as usize)
            .max(config.min_survivors)
            .min(order.len());
        order.truncate(keep);
        let mut survivors: Vec<CandidateDeployment> =
            order.iter().map(|&i| rung_pop[i].clone()).collect();
        // Pinned candidates ride through every rung (unless their build
        // failed outright — an error cannot improve at finer fidelity).
        for (index, candidate) in rung_pop.iter().enumerate() {
            if is_pinned(candidate) && results[index].is_ok() && !order.contains(&index) {
                survivors.push(candidate.clone());
            }
        }
        rung_pop = survivors;
        if recorder.enabled() {
            recorder.event(
                TraceEvent::new(
                    EventKind::Rung,
                    rung_index as f64 + 0.5,
                    &format!("rung{rung_index}->rung{}", rung_index + 1),
                    rung_pop.len() as f64,
                )
                .with_detail("survivors promoted"),
            );
        }
        if rung_pop.is_empty() {
            break;
        }
    }
    let final_fidelity = config.final_fidelity();

    // Everything scored at the final fidelity, first occurrence wins.
    let mut scored: Vec<(CandidateDeployment, Result<Evaluation, EvalError>)> = Vec::new();
    // Dedup by exact fingerprint; `scored` keeps first-occurrence order.
    let mut seen: HashMap<u64, usize> = HashMap::new();
    let absorb = |scored: &mut Vec<(CandidateDeployment, Result<Evaluation, EvalError>)>,
                  seen: &mut HashMap<u64, usize>,
                  candidate: &CandidateDeployment,
                  result: &Result<Evaluation, EvalError>| {
        seen.entry(candidate.fingerprint()).or_insert_with(|| {
            scored.push((candidate.clone(), result.clone()));
            scored.len() - 1
        });
    };
    for (candidate, result) in rung_pop.iter().zip(&final_results) {
        absorb(&mut scored, &mut seen, candidate, result);
    }

    // Phase 4: seeded local search around the elites.
    let elites_of = |scored: &[(CandidateDeployment, Result<Evaluation, EvalError>)]| {
        let mut order: Vec<usize> = (0..scored.len()).filter(|&i| scored[i].1.is_ok()).collect();
        order.sort_by(|&a, &b| {
            let ka = rank_key(&scored[a].1, slo);
            let kb = rank_key(&scored[b].1, slo);
            ka.partial_cmp(&kb)
                .expect("rank keys are comparable")
                .then_with(|| scored[a].0.fingerprint().cmp(&scored[b].0.fingerprint()))
        });
        order.truncate(config.elites);
        order
    };
    for round in 0..config.mutation_rounds {
        let elite_indices = elites_of(&scored);
        if elite_indices.is_empty() {
            break;
        }
        // Elites are re-submitted alongside their neighbours: their
        // lookups are guaranteed cache hits, and the batch stays one
        // deterministic unit.
        let mut batch: Vec<CandidateDeployment> = Vec::new();
        for (position, &elite) in elite_indices.iter().enumerate() {
            let elite_candidate = scored[elite].0.clone();
            batch.push(elite_candidate.clone());
            for mutation in 0..config.mutations_per_elite {
                let draw = decorrelate_seed(
                    config.seed,
                    ((round * config.elites + position) * config.mutations_per_elite + mutation)
                        as u64
                        + 0x0bad_5eed,
                );
                batch.push(space.mutate(&elite_candidate, draw));
            }
        }
        let hits_before = cache.hits();
        let misses_before = cache.misses();
        let results = evaluate_batch(
            cache,
            evaluator,
            &batch,
            final_fidelity,
            workers,
            &mut fresh_evaluations,
        );
        if recorder.enabled() {
            recorder.count(EventKind::CacheHit, cache.hits() - hits_before);
            recorder.count(EventKind::CacheMiss, cache.misses() - misses_before);
        }
        for (candidate, result) in batch.iter().zip(&results) {
            absorb(&mut scored, &mut seen, candidate, result);
        }
    }

    // Phase 5: the SLO-satisfying Pareto frontier and the argmin.
    let feasible: Vec<(&CandidateDeployment, &Evaluation)> = scored
        .iter()
        .filter_map(|(candidate, result)| match result {
            Ok(evaluation) if evaluation.meets(slo) => Some((candidate, evaluation)),
            _ => None,
        })
        .collect();
    let objectives: Vec<[f64; 3]> = feasible
        .iter()
        .map(|(_, evaluation)| {
            [
                evaluation
                    .grams_per_request()
                    .expect("feasible deployments served requests"),
                evaluation.worst_p99_ms(),
                evaluation.devices() as f64,
            ]
        })
        .collect();
    let frontier: Vec<PlannedDeployment> = pareto_indices(&objectives)
        .into_iter()
        .map(|i| PlannedDeployment {
            candidate: feasible[i].0.clone(),
            evaluation: *feasible[i].1,
            label: space.describe(feasible[i].0),
        })
        .collect();
    let best = frontier.first().cloned();

    SearchOutcome {
        frontier,
        best,
        final_fidelity,
        candidates_enumerated,
        screened_out,
        rung_populations,
        fresh_evaluations,
        cache_hits: cache.hits() - hits_at_entry,
        cache_misses: cache.misses() - misses_at_entry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::CohortOption;
    use crate::testutil::{flat_region, pixel_option};

    /// A pure synthetic evaluator: every metric is a deterministic
    /// function of the candidate's indices, so the search machinery can
    /// be exercised without building a single simulation.
    struct Synthetic;

    impl Synthetic {
        fn grams(candidate: &CandidateDeployment) -> f64 {
            // Carbon falls with the second region's cohort index and
            // rises with the fallback share — a simple landscape whose
            // argmin is (cohort 2 everywhere, carbon-aware, no fallback).
            let cohorts: usize = candidate.site_cohorts().iter().sum();
            10.0 - cohorts as f64
                + 3.0 * candidate.fallback() as f64
                + if candidate.routing() == 1 { -0.5 } else { 0.0 }
        }
    }

    impl Evaluator for Synthetic {
        fn evaluate(
            &self,
            candidate: &CandidateDeployment,
            fidelity: Fidelity,
        ) -> Result<Evaluation, EvalError> {
            let devices: usize = candidate.site_cohorts().iter().map(|&c| c * 2).sum();
            // Latency violates the SLO when both regions pick the small
            // cohort 1 without any fallback.
            let undersized =
                candidate.site_cohorts().iter().all(|&c| c <= 1) && candidate.fallback() == 0;
            let median = if undersized { 90.0 } else { 12.0 };
            // The coarse rung under-reports latency slightly; metrics
            // stay a pure function of (candidate, fidelity).
            let scale = 1.0 + fidelity.horizon_days() as f64 / 100.0;
            Ok(Evaluation::new(
                Some(Self::grams(candidate)),
                median * scale,
                median * 2.0 * scale,
                median * 3.0 * scale,
                0.0,
                1_000.0,
                Self::grams(candidate),
                devices,
            ))
        }
    }

    fn space() -> PlannerSpace {
        PlannerSpace::new(
            vec![CohortOption::empty(), pixel_option(2), pixel_option(4)],
            vec![flat_region("west", 100.0), flat_region("east", 400.0)],
        )
        .fallback_shares(vec![0.0, 0.5])
    }

    fn config() -> SearchConfig {
        SearchConfig::new()
            .rungs(vec![Fidelity::coarse(), Fidelity::medium()])
            .local_search(3, 2, 2)
    }

    #[test]
    fn search_finds_the_synthetic_argmin_and_respects_the_slo() {
        let space = space();
        let slo = Slo::new(50.0, 120.0);
        let mut cache = EvalCache::new();
        let outcome = search(&space, &Synthetic, &slo, &config(), &mut cache);
        let best = outcome.best().expect("feasible candidates exist");
        // The landscape's argmin: largest cohorts, carbon-aware, no
        // fallback → grams = 10 - 4 - 0.5.
        assert_eq!(best.candidate().site_cohorts(), &[2, 2]);
        assert_eq!(best.candidate().routing(), 1);
        assert_eq!(best.candidate().fallback(), 0);
        // Every frontier point satisfies the SLO at the final fidelity.
        for planned in outcome.frontier() {
            assert!(planned.evaluation().meets(&slo), "{}", planned.label());
        }
        // The undersized all-small candidates were filtered by the SLO.
        for planned in outcome.frontier() {
            assert!(planned.evaluation().worst_median_ms() <= 50.0);
        }
        // Halving evaluated the full population once, survivors twice.
        assert_eq!(outcome.rung_populations()[0], 34);
        assert!(outcome.rung_populations()[1] < 34);
        // Elites re-submitted during mutation rounds produce cache hits.
        assert!(outcome.cache_hits() > 0);
        assert!(outcome.cache_hit_rate() > 0.0);
    }

    #[test]
    fn search_is_bit_identical_at_any_worker_count() {
        let space = space();
        let slo = Slo::new(50.0, 120.0);
        let serial = search(
            &space,
            &Synthetic,
            &slo,
            &config().parallelism(1),
            &mut EvalCache::new(),
        );
        for workers in [2, 3, 8] {
            let threaded = search(
                &space,
                &Synthetic,
                &slo,
                &config().parallelism(workers),
                &mut EvalCache::new(),
            );
            assert_eq!(serial, threaded, "worker count {workers}");
        }
    }

    #[test]
    fn cached_results_are_bit_identical_to_fresh_ones() {
        let space = space();
        let slo = Slo::new(50.0, 120.0);
        let mut cache = EvalCache::new();
        let first = search(&space, &Synthetic, &slo, &config(), &mut cache);
        // A second search over a warm cache runs zero new simulations
        // and reproduces the outcome except for the counter totals.
        let mut fresh = 0u64;
        let rerun = evaluate_batch(
            &mut cache,
            &Synthetic,
            &[first.best().unwrap().candidate().clone()],
            first.final_fidelity(),
            2,
            &mut fresh,
        );
        assert_eq!(fresh, 0, "warm cache re-evaluates nothing");
        assert_eq!(
            rerun[0].as_ref().unwrap(),
            first.best().unwrap().evaluation()
        );
    }

    #[test]
    fn outcome_counters_cover_only_this_search_on_a_warm_cache() {
        let space = space();
        let slo = Slo::new(50.0, 120.0);
        let mut cache = EvalCache::new();
        let cold = search(&space, &Synthetic, &slo, &config(), &mut cache);
        // Re-running over the warm cache: every lookup hits, nothing is
        // re-evaluated, and the reported counters are this run's own
        // traffic — not the cache's lifetime totals.
        let warm = search(&space, &Synthetic, &slo, &config(), &mut cache);
        assert_eq!(warm.fresh_evaluations(), 0);
        assert_eq!(warm.cache_misses(), 0);
        assert_eq!(
            warm.cache_hits(),
            cold.cache_hits() + cold.cache_misses(),
            "the warm run repeats the cold run's lookups, all as hits"
        );
        assert_eq!(warm.frontier(), cold.frontier());
    }

    #[test]
    fn pinned_candidates_survive_halving_to_the_frontier() {
        let space = space();
        let slo = Slo::new(50.0, 120.0);
        // Feasible only thanks to its leased fallback, with the smallest
        // non-zero fleet (2 devices) — non-dominated whenever scored, but
        // its carbon ranks far below the halving cutoff.
        let pinned = CandidateDeployment::new(vec![0, 1], 1, 0, 0, 1);
        let base = SearchConfig::new()
            .rungs(vec![Fidelity::coarse(), Fidelity::medium()])
            .survivor_fraction(0.05)
            .min_survivors(1)
            .local_search(1, 0, 1);
        let without = search(&space, &Synthetic, &slo, &base, &mut EvalCache::new());
        assert!(
            !without.frontier().iter().any(|p| p.candidate() == &pinned),
            "an aggressive cutoff must drop the mid-ranked candidate"
        );
        let with = search(
            &space,
            &Synthetic,
            &slo,
            &base.pin(pinned.clone()),
            &mut EvalCache::new(),
        );
        assert!(
            with.frontier().iter().any(|p| p.candidate() == &pinned),
            "a pinned candidate is always scored at final fidelity"
        );
        // And a feasible pinned incumbent bounds the argmin from above.
        let best = with.best().unwrap().evaluation().grams_per_request();
        assert!(best.unwrap() <= Synthetic::grams(&pinned));
    }

    #[test]
    fn an_empty_feasible_set_yields_an_empty_frontier() {
        let space = space();
        // Impossible SLO: nothing passes.
        let slo = Slo::new(0.001, 0.001);
        let outcome = search(&space, &Synthetic, &slo, &config(), &mut EvalCache::new());
        assert!(outcome.frontier().is_empty());
        assert!(outcome.best().is_none());
    }
}
