//! The planner's search space: the option lists a
//! [`CandidateDeployment`] indexes into, deterministic enumeration of
//! every valid candidate, and the seeded mutation operator the local
//! search uses.

use junkyard_devices::device::DeviceSpec;
use junkyard_fleet::routing::RoutingPolicy;
use junkyard_fleet::site::GridRegion;
use junkyard_microsim::sweep::decorrelate_seed;

use crate::candidate::CandidateDeployment;

/// One provisioning option for a site: a named recipe of device slots
/// drawn from the junkyard catalog, each with a per-slot serving
/// capacity. An *empty* option means the region hosts no cloudlet.
#[derive(Debug, Clone)]
pub struct CohortOption {
    label: String,
    /// `(model, per-slot capacity in requests/second, slot count)`.
    slots: Vec<(DeviceSpec, f64, usize)>,
}

impl CohortOption {
    /// An empty option: the region hosts nothing.
    #[must_use]
    pub fn empty() -> Self {
        Self {
            label: "(none)".to_owned(),
            slots: Vec::new(),
        }
    }

    /// A uniform cohort of `count` devices of one model.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or the per-slot capacity is not
    /// strictly positive.
    #[must_use]
    pub fn uniform(device: DeviceSpec, count: usize, per_slot_qps: f64) -> Self {
        assert!(count > 0, "a uniform cohort needs at least one device");
        let label = format!("{count}x {}", device.name());
        Self::mixed(label, vec![(device, per_slot_qps, count)])
    }

    /// A heterogeneous cohort from explicit `(model, per-slot capacity,
    /// count)` slots.
    ///
    /// # Panics
    ///
    /// Panics if any slot has a zero count or a non-positive capacity.
    #[must_use]
    pub fn mixed(label: impl Into<String>, slots: Vec<(DeviceSpec, f64, usize)>) -> Self {
        for (device, qps, count) in &slots {
            assert!(*count > 0, "{}: slot count must be positive", device.name());
            assert!(
                *qps > 0.0,
                "{}: slot capacity must be positive",
                device.name()
            );
        }
        Self {
            label: label.into(),
            slots,
        }
    }

    /// Display label for reports.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The `(model, per-slot capacity, count)` slots of the recipe.
    #[must_use]
    pub fn slots(&self) -> &[(DeviceSpec, f64, usize)] {
        &self.slots
    }

    /// Whether the option provisions nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total devices the option provisions.
    #[must_use]
    pub fn device_count(&self) -> usize {
        self.slots.iter().map(|(_, _, count)| count).sum()
    }

    /// Nominal serving capacity of the option, requests/second.
    #[must_use]
    pub fn capacity_qps(&self) -> f64 {
        self.slots
            .iter()
            .map(|(_, qps, count)| qps * *count as f64)
            .sum()
    }
}

/// The full search space: per-region cohort options plus the fleet-wide
/// policy dimensions. Every dimension is an explicit, ordered option
/// list, so enumeration and mutation are deterministic.
#[derive(Debug, Clone)]
pub struct PlannerSpace {
    cohorts: Vec<CohortOption>,
    regions: Vec<GridRegion>,
    routings: Vec<RoutingPolicy>,
    charge_floors: Vec<f64>,
    refill_lags: Vec<usize>,
    fallback_shares: Vec<f64>,
}

impl PlannerSpace {
    /// Creates a space over `cohorts` × `regions` with default policy
    /// dimensions: static and carbon-aware routing, the paper's 25 %
    /// battery floor, a one-week junkyard refill lag and no leased
    /// fallback.
    ///
    /// # Panics
    ///
    /// Panics if either list is empty.
    #[must_use]
    pub fn new(cohorts: Vec<CohortOption>, regions: Vec<GridRegion>) -> Self {
        assert!(
            !cohorts.is_empty(),
            "the space needs at least one cohort option"
        );
        assert!(!regions.is_empty(), "the space needs at least one region");
        Self {
            cohorts,
            regions,
            routings: vec![RoutingPolicy::Static, RoutingPolicy::carbon_aware()],
            charge_floors: vec![0.25],
            refill_lags: vec![7],
            fallback_shares: vec![0.0],
        }
    }

    /// Overrides the routing-policy options.
    ///
    /// # Panics
    ///
    /// Panics if empty.
    #[must_use]
    pub fn routings(mut self, routings: Vec<RoutingPolicy>) -> Self {
        assert!(!routings.is_empty(), "need at least one routing policy");
        self.routings = routings;
        self
    }

    /// Overrides the smart-charging battery-floor options (the
    /// unconditional-charge threshold of the Section 4.3 policy).
    ///
    /// # Panics
    ///
    /// Panics if empty or any floor is outside `[0, 1]`.
    #[must_use]
    pub fn charge_floors(mut self, floors: Vec<f64>) -> Self {
        assert!(!floors.is_empty(), "need at least one charge floor");
        for floor in &floors {
            assert!(
                (0.0..=1.0).contains(floor),
                "charge floor must be in [0, 1]"
            );
        }
        self.charge_floors = floors;
        self
    }

    /// Overrides the junkyard refill-lag options, in whole days.
    ///
    /// # Panics
    ///
    /// Panics if empty.
    #[must_use]
    pub fn refill_lags(mut self, lags: Vec<usize>) -> Self {
        assert!(!lags.is_empty(), "need at least one refill lag");
        self.refill_lags = lags;
        self
    }

    /// Overrides the leased-fallback share options: the fraction of the
    /// leased blueprint's capacity rented alongside the cloudlets.
    ///
    /// # Panics
    ///
    /// Panics if empty or any share is outside `[0, 1]`.
    #[must_use]
    pub fn fallback_shares(mut self, shares: Vec<f64>) -> Self {
        assert!(!shares.is_empty(), "need at least one fallback share");
        for share in &shares {
            assert!(
                (0.0..=1.0).contains(share),
                "fallback share must be in [0, 1]"
            );
        }
        self.fallback_shares = shares;
        self
    }

    /// The cohort options.
    #[must_use]
    pub fn cohort_options(&self) -> &[CohortOption] {
        &self.cohorts
    }

    /// The grid regions, in site order.
    #[must_use]
    pub fn regions(&self) -> &[GridRegion] {
        &self.regions
    }

    /// The routing-policy options.
    #[must_use]
    pub fn routing_options(&self) -> &[RoutingPolicy] {
        &self.routings
    }

    /// The battery-floor options.
    #[must_use]
    pub fn charge_floor_options(&self) -> &[f64] {
        &self.charge_floors
    }

    /// The refill-lag options, days.
    #[must_use]
    pub fn refill_lag_options(&self) -> &[usize] {
        &self.refill_lags
    }

    /// The leased-fallback share options.
    #[must_use]
    pub fn fallback_share_options(&self) -> &[f64] {
        &self.fallback_shares
    }

    /// The cohort option a candidate assigns to `region`.
    #[must_use]
    pub fn cohort_of(&self, candidate: &CandidateDeployment, region: usize) -> &CohortOption {
        &self.cohorts[candidate.site_cohorts()[region]]
    }

    /// The routing policy a candidate selects.
    #[must_use]
    pub fn routing_of(&self, candidate: &CandidateDeployment) -> RoutingPolicy {
        self.routings[candidate.routing()]
    }

    /// The battery floor a candidate selects.
    #[must_use]
    pub fn charge_floor_of(&self, candidate: &CandidateDeployment) -> f64 {
        self.charge_floors[candidate.charge_floor()]
    }

    /// The refill lag a candidate selects, days.
    #[must_use]
    pub fn refill_lag_of(&self, candidate: &CandidateDeployment) -> usize {
        self.refill_lags[candidate.refill_lag()]
    }

    /// The leased-fallback share a candidate selects.
    #[must_use]
    pub fn fallback_share_of(&self, candidate: &CandidateDeployment) -> f64 {
        self.fallback_shares[candidate.fallback()]
    }

    /// Total phones a candidate provisions across its cohort sites (the
    /// frontier's fleet-size objective; leased capacity is not counted).
    #[must_use]
    pub fn total_devices(&self, candidate: &CandidateDeployment) -> usize {
        (0..self.regions.len())
            .map(|r| self.cohort_of(candidate, r).device_count())
            .sum()
    }

    /// Nominal cohort serving capacity of a candidate, requests/second
    /// (leased fallback excluded).
    #[must_use]
    pub fn cohort_capacity_qps(&self, candidate: &CandidateDeployment) -> f64 {
        (0..self.regions.len())
            .map(|r| self.cohort_of(candidate, r).capacity_qps())
            .sum()
    }

    /// Whether a candidate can serve anything at all: at least one
    /// non-empty cohort, or a non-zero leased fallback share.
    #[must_use]
    pub fn is_valid(&self, candidate: &CandidateDeployment) -> bool {
        self.contains(candidate)
            && (self.cohort_capacity_qps(candidate) > 0.0
                || self.fallback_share_of(candidate) > 0.0)
    }

    /// Whether every index of the candidate is in range for this space.
    #[must_use]
    pub fn contains(&self, candidate: &CandidateDeployment) -> bool {
        candidate.site_cohorts().len() == self.regions.len()
            && candidate
                .site_cohorts()
                .iter()
                .all(|&c| c < self.cohorts.len())
            && candidate.routing() < self.routings.len()
            && candidate.charge_floor() < self.charge_floors.len()
            && candidate.refill_lag() < self.refill_lags.len()
            && candidate.fallback() < self.fallback_shares.len()
    }

    /// Number of points in the cartesian product, valid or not.
    #[must_use]
    pub fn cardinality(&self) -> usize {
        self.cohorts
            .len()
            .pow(u32::try_from(self.regions.len()).expect("region count fits u32"))
            * self.routings.len()
            * self.charge_floors.len()
            * self.refill_lags.len()
            * self.fallback_shares.len()
    }

    /// Every valid candidate, in a fixed mixed-radix order (region
    /// cohorts vary slowest, fallback share fastest) — the deterministic
    /// starting population of the search.
    #[must_use]
    pub fn enumerate(&self) -> Vec<CandidateDeployment> {
        let regions = self.regions.len();
        let radices: Vec<usize> = (0..regions)
            .map(|_| self.cohorts.len())
            .chain([
                self.routings.len(),
                self.charge_floors.len(),
                self.refill_lags.len(),
                self.fallback_shares.len(),
            ])
            .collect();
        let mut out = Vec::new();
        for mut index in 0..self.cardinality() {
            let mut digits = vec![0usize; radices.len()];
            for (digit, radix) in digits.iter_mut().zip(&radices).rev() {
                *digit = index % radix;
                index /= radix;
            }
            let candidate = CandidateDeployment::new(
                digits[..regions].to_vec(),
                digits[regions],
                digits[regions + 1],
                digits[regions + 2],
                digits[regions + 3],
            );
            if self.is_valid(&candidate) {
                out.push(candidate);
            }
        }
        out
    }

    /// Derives a neighbouring valid candidate by re-drawing exactly one
    /// dimension, deterministically from `seed` (mixed through
    /// [`decorrelate_seed`]). Single-option dimensions are skipped; if no
    /// mutable dimension yields a valid neighbour within a bounded number
    /// of attempts (or the space is a single point), the candidate is
    /// returned unchanged.
    #[must_use]
    pub fn mutate(&self, candidate: &CandidateDeployment, seed: u64) -> CandidateDeployment {
        let regions = self.regions.len();
        let dims = regions + 4;
        for attempt in 0..16u64 {
            let draw = decorrelate_seed(seed, attempt * 2 + 1);
            let dim = (draw % dims as u64) as usize;
            let (len, current) = if dim < regions {
                (self.cohorts.len(), candidate.site_cohorts()[dim])
            } else {
                match dim - regions {
                    0 => (self.routings.len(), candidate.routing()),
                    1 => (self.charge_floors.len(), candidate.charge_floor()),
                    2 => (self.refill_lags.len(), candidate.refill_lag()),
                    _ => (self.fallback_shares.len(), candidate.fallback()),
                }
            };
            if len < 2 {
                continue;
            }
            // Draw from the other options so the neighbour always moves.
            let pick = (decorrelate_seed(seed, attempt * 2 + 2) % (len as u64 - 1)) as usize;
            let next = if pick >= current { pick + 1 } else { pick };
            let mutated = if dim < regions {
                candidate.clone().with_site_cohort(dim, next)
            } else {
                match dim - regions {
                    0 => candidate.clone().with_routing(next),
                    1 => candidate.clone().with_charge_floor(next),
                    2 => candidate.clone().with_refill_lag(next),
                    _ => candidate.clone().with_fallback(next),
                }
            };
            if self.is_valid(&mutated) {
                return mutated;
            }
        }
        candidate.clone()
    }

    /// Human-readable one-line description of a candidate.
    #[must_use]
    pub fn describe(&self, candidate: &CandidateDeployment) -> String {
        let mut parts: Vec<String> = self
            .regions
            .iter()
            .enumerate()
            .map(|(r, region)| {
                format!("{}={}", region.name(), self.cohort_of(candidate, r).label())
            })
            .collect();
        parts.push(self.routing_of(candidate).label().to_owned());
        parts.push(format!(
            "floor {:.0}%",
            self.charge_floor_of(candidate) * 100.0
        ));
        parts.push(format!("lag {}d", self.refill_lag_of(candidate)));
        let share = self.fallback_share_of(candidate);
        if share > 0.0 {
            parts.push(format!("leased {:.0}%", share * 100.0));
        }
        parts.join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{flat_region, pixel_option};

    fn small_space() -> PlannerSpace {
        PlannerSpace::new(
            vec![CohortOption::empty(), pixel_option(2), pixel_option(4)],
            vec![flat_region("west", 100.0), flat_region("east", 400.0)],
        )
        .fallback_shares(vec![0.0, 0.5])
    }

    #[test]
    fn enumerate_skips_only_the_unservable_candidates() {
        let space = small_space();
        // 3^2 cohort combos × 2 routings × 1 × 1 × 2 fallbacks = 36 raw
        // points; the two (empty, empty, fallback 0) points are invalid.
        assert_eq!(space.cardinality(), 36);
        let population = space.enumerate();
        assert_eq!(population.len(), 34);
        assert!(population.iter().all(|c| space.is_valid(c)));
        // Enumeration order is stable.
        assert_eq!(population, space.enumerate());
        // Fingerprints are unique across the population.
        let mut prints: Vec<u64> = population
            .iter()
            .map(CandidateDeployment::fingerprint)
            .collect();
        prints.sort_unstable();
        prints.dedup();
        assert_eq!(prints.len(), population.len());
    }

    #[test]
    fn mutation_moves_one_dimension_and_stays_valid() {
        let space = small_space();
        let base = CandidateDeployment::new(vec![1, 1], 0, 0, 0, 0);
        let mut moved = 0;
        for seed in 0..50u64 {
            let mutated = space.mutate(&base, seed);
            assert!(space.is_valid(&mutated));
            assert_eq!(space.mutate(&base, seed), mutated, "deterministic per seed");
            if mutated != base {
                moved += 1;
                // Exactly one dimension differs.
                let mut diffs = 0;
                for r in 0..2 {
                    diffs += usize::from(mutated.site_cohorts()[r] != base.site_cohorts()[r]);
                }
                diffs += usize::from(mutated.routing() != base.routing());
                diffs += usize::from(mutated.charge_floor() != base.charge_floor());
                diffs += usize::from(mutated.refill_lag() != base.refill_lag());
                diffs += usize::from(mutated.fallback() != base.fallback());
                assert_eq!(diffs, 1, "{mutated:?}");
            }
        }
        assert!(moved > 40, "mutations almost always move: {moved}/50");
    }

    #[test]
    fn single_point_spaces_mutate_to_themselves() {
        let space = PlannerSpace::new(vec![pixel_option(2)], vec![flat_region("only", 200.0)])
            .routings(vec![RoutingPolicy::Static])
            .charge_floors(vec![0.25])
            .refill_lags(vec![7])
            .fallback_shares(vec![0.0]);
        let only = &space.enumerate()[0];
        assert_eq!(space.mutate(only, 3), *only);
    }

    #[test]
    fn describe_names_regions_and_policies() {
        let space = small_space();
        let candidate = CandidateDeployment::new(vec![2, 0], 1, 0, 0, 1);
        let text = space.describe(&candidate);
        assert!(text.contains("west=4x Pixel 3A"), "{text}");
        assert!(text.contains("east=(none)"), "{text}");
        assert!(text.contains("carbon-aware"), "{text}");
        assert!(text.contains("leased 50%"), "{text}");
    }
}
