//! Criterion benchmarks of the substrate layers themselves: the
//! discrete-event engine, the grid synthesiser, placement and the CCI
//! calculator. These are the ablation-style benchmarks referenced in
//! `DESIGN.md`: they isolate the cost of each building block.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use junkyard_carbon::cci::CciCalculator;
use junkyard_carbon::embodied::EmbodiedCarbon;
use junkyard_carbon::ops::{OpUnit, Throughput};
use junkyard_carbon::units::{CarbonIntensity, GramsCo2e, TimeSpan, Watts};
use junkyard_grid::synth::CaisoSynthesizer;
use junkyard_microsim::app::{social_network, SN_COMPOSE_POST};
use junkyard_microsim::compiled::CoreHeap;
use junkyard_microsim::network::NetworkModel;
use junkyard_microsim::node::ten_pixel_cloudlet;
use junkyard_microsim::placement::Placement;
use junkyard_microsim::sim::{Simulation, Workload};
use junkyard_microsim::sweep::SweepConfig;

fn cci_calculator(c: &mut Criterion) {
    let calc = CciCalculator::new(OpUnit::Gflop)
        .embodied(EmbodiedCarbon::manufactured(
            "server",
            GramsCo2e::from_kilograms(3_330.0),
        ))
        .average_power(Watts::new(308.7))
        .grid(CarbonIntensity::from_grams_per_kwh(257.0))
        .throughput(Throughput::per_second(631.0, OpUnit::Gflop))
        .battery_replacement(GramsCo2e::from_kilograms(2.0), TimeSpan::from_years(2.3));
    c.bench_function("cci_60_month_series", |b| {
        b.iter(|| black_box(calc.series("server", (1..=60).map(f64::from)).unwrap()))
    });
}

fn grid_synthesis(c: &mut Criterion) {
    c.bench_function("caiso_synth_30_days", |b| {
        b.iter(|| black_box(CaisoSynthesizer::new(7, 30).intensity_trace()))
    });
}

fn placement_and_engine(c: &mut Criterion) {
    let app = social_network();
    let nodes = ten_pixel_cloudlet();
    c.bench_function("swarm_placement_social_network", |b| {
        b.iter(|| black_box(Placement::swarm_spread(&app, &nodes, 11).unwrap()))
    });

    let placement = Placement::swarm_spread(&app, &nodes, 11).unwrap();
    let sim = Simulation::new(app, nodes, placement, NetworkModel::phone_wifi()).unwrap();
    let mut group = c.benchmark_group("des_engine");
    group.sample_size(10);
    group.bench_function("social_network_write_1k_qps_2s", |b| {
        b.iter(|| {
            black_box(
                sim.run(&Workload::steady(1_000.0, 2.0, Some(SN_COMPOSE_POST), 42))
                    .unwrap(),
            )
        })
    });
    // The pre-refactor event loop, kept as the executable specification:
    // the gap between this and the compiled run above is the compiled
    // engine's win.
    group.bench_function("social_network_write_1k_qps_2s_reference", |b| {
        b.iter(|| {
            black_box(
                sim.run_reference(&Workload::steady(1_000.0, 2.0, Some(SN_COMPOSE_POST), 42))
                    .unwrap(),
            )
        })
    });
    group.finish();
}

/// Per-stage engine benchmarks, so a regression in the full `des_engine`
/// numbers can be localised to arrival generation, compilation (placement
/// resolution + service-time precomputation) or resource-heap operations.
fn engine_stages(c: &mut Criterion) {
    let app = social_network();
    let nodes = ten_pixel_cloudlet();
    let placement = Placement::swarm_spread(&app, &nodes, 11).unwrap();
    let sim = Simulation::new(app, nodes, placement, NetworkModel::phone_wifi()).unwrap();
    let compiled = sim.compile();

    c.bench_function("engine_compile_social_network", |b| {
        b.iter(|| black_box(sim.compile()))
    });

    let workload = Workload::steady(5_000.0, 2.0, Some(SN_COMPOSE_POST), 42);
    c.bench_function("engine_arrival_generation_5k_qps_2s", |b| {
        b.iter(|| black_box(compiled.arrivals(&workload).unwrap().count()))
    });

    c.bench_function("engine_core_heap_64k_reservations", |b| {
        b.iter(|| {
            let mut heap = CoreHeap::new(8, 0.0);
            let mut now = 0.0;
            for _ in 0..65_536 {
                let start = heap.begin(now);
                heap.finish_at(start + 0.001);
                now += 0.000_5;
            }
            black_box(heap.len())
        })
    });
}

/// The threaded sweep layer against its serial baseline (identical curves;
/// the ratio is the thread fan-out win on this machine).
fn threaded_sweep(c: &mut Criterion) {
    let app = social_network();
    let nodes = ten_pixel_cloudlet();
    let placement = Placement::swarm_spread(&app, &nodes, 11).unwrap();
    let sim = Simulation::new(app, nodes, placement, NetworkModel::phone_wifi()).unwrap();
    let compiled = sim.compile();
    let sweep = SweepConfig::new(vec![500.0, 1_500.0, 2_500.0, 3_500.0], 2.0, 0.5)
        .request_type(SN_COMPOSE_POST);

    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    let serial = sweep.clone().parallelism(1);
    group.bench_function("social_network_write_4_points_serial", |b| {
        b.iter(|| black_box(serial.run_compiled("phones", &compiled).unwrap()))
    });
    group.bench_function("social_network_write_4_points_threaded", |b| {
        b.iter(|| black_box(sweep.run_compiled("phones", &compiled).unwrap()))
    });
    group.finish();
}

criterion_group!(
    substrates,
    cci_calculator,
    grid_synthesis,
    placement_and_engine,
    engine_stages,
    threaded_sweep
);
criterion_main!(substrates);
