//! Criterion benchmarks: one benchmark per paper table/figure, timing the
//! computation that regenerates it (at reduced scale for the
//! simulation-backed figures so `cargo bench` stays tractable).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use junkyard_carbon::units::TimeSpan;
use junkyard_core::charging_study::ChargingStudy;
use junkyard_core::cloudlet_study::{
    figure8_utilization, figure9_chart, CloudletWorkload, Figure7Study,
};
use junkyard_core::cluster_cci::ClusterCciStudy;
use junkyard_core::cost_study::cost_table;
use junkyard_core::datacenter_study::DatacenterStudy;
use junkyard_core::energy_mix::energy_mix_chart;
use junkyard_core::single_device::SingleDeviceStudy;
use junkyard_core::tables;
use junkyard_core::thermal_study::run_thermal_study;
use junkyard_devices::benchmark::Benchmark;
use junkyard_grid::regime::PowerRegime;

fn analytic_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("analytic");
    group.sample_size(20);
    group.bench_function("fig1_capability_trends", |b| {
        b.iter(|| black_box(tables::figure1_charts()))
    });
    group.bench_function("table1_geekbench", |b| {
        b.iter(|| black_box(tables::table1()))
    });
    group.bench_function("table2_power", |b| b.iter(|| black_box(tables::table2())));
    group.bench_function("table3_components", |b| {
        b.iter(|| black_box(tables::table3()))
    });
    group.bench_function("fig2_single_device_cci", |b| {
        b.iter(|| black_box(SingleDeviceStudy::new(Benchmark::Dijkstra).run_paper_devices()))
    });
    group.bench_function("fig5_cluster_cci", |b| {
        b.iter(|| {
            black_box(
                ClusterCciStudy::new(Benchmark::Dijkstra, PowerRegime::CaliforniaMix)
                    .run_paper_cloudlets()
                    .unwrap(),
            )
        })
    });
    group.bench_function("fig6_energy_mix", |b| {
        b.iter(|| black_box(energy_mix_chart().unwrap()))
    });
    group.bench_function("table4_datacenter", |b| {
        b.iter(|| black_box(DatacenterStudy::new().cci_table().unwrap()))
    });
    group.bench_function("fig9_carbon_per_request", |b| {
        let months: Vec<f64> = (1..=54).map(f64::from).collect();
        b.iter(|| black_box(figure9_chart(CloudletWorkload::HotelReservation, &months).unwrap()))
    });
    group.bench_function("cost_section_6_2", |b| {
        b.iter(|| black_box(cost_table(TimeSpan::from_years(3.0))))
    });
    group.finish();
}

fn simulation_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    group.bench_function("fig3_thermal_stress_test", |b| {
        b.iter(|| black_box(run_thermal_study()))
    });
    group.bench_function("fig4_smart_charging_week", |b| {
        b.iter(|| black_box(ChargingStudy::new(7).days(7).run()))
    });
    group.bench_function("fig7_hotel_sweep_point", |b| {
        let study = Figure7Study::quick().qps_points(vec![2_000.0]);
        b.iter(|| black_box(study.run(CloudletWorkload::HotelReservation).unwrap()))
    });
    group.bench_function("fig8_utilization_phases", |b| {
        b.iter(|| black_box(figure8_utilization(800.0, 900.0, 5.0, 7).unwrap()))
    });
    group.finish();
}

criterion_group!(experiments, analytic_experiments, simulation_experiments);
criterion_main!(experiments);
