//! Ratchet-style performance floor: checks a freshly generated
//! `BENCH_microsim.json` against the committed `bench_floor.json` and
//! fails the build when the engine slips below the floor.
//!
//! Two checks, both calibrated with wide headroom so only a real
//! regression (or a genuinely broken fan-out) trips them:
//!
//! * every fixed scenario must sustain at least `min_events_per_sec`
//!   engine events per wall second;
//! * when the sweep actually fanned out (`workers >= 2`), the threaded
//!   sweep must beat the serial one by at least `min_sweep_speedup`. On
//!   a one-core runner (`workers == 1`) the check is skipped and says
//!   so — a capped fan-out is an environment fact, not a regression,
//!   and the report now records the worker count so nobody mistakes
//!   one for the other again.
//!
//! The floor file is committed and only ever tightened deliberately;
//! this binary never rewrites it.
//!
//! Usage: `cargo run --release --bin perf_floor [BENCH_microsim.json [bench_floor.json]]`

use std::process::ExitCode;

/// Every number appearing as `"key": <number>` in `json`, in order.
fn numbers_for(json: &str, key: &str) -> Vec<f64> {
    let needle = format!("\"{key}\":");
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(at) = rest.find(&needle) {
        rest = &rest[at + needle.len()..];
        let value: String = rest
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | 'e' | 'E' | '+'))
            .collect();
        if let Ok(number) = value.parse::<f64>() {
            out.push(number);
        }
    }
    out
}

/// The first number for `key`, or an explicit failure naming the file.
fn number_for(json: &str, key: &str, file: &str) -> f64 {
    *numbers_for(json, key)
        .first()
        .unwrap_or_else(|| panic!("{file} is missing \"{key}\""))
}

fn main() -> ExitCode {
    let bench_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_microsim.json".to_owned());
    let floor_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "bench_floor.json".to_owned());

    let bench = std::fs::read_to_string(&bench_path).expect("bench report is readable");
    let floor = std::fs::read_to_string(&floor_path).expect("floor file is readable");

    let min_events_per_sec = number_for(&floor, "min_events_per_sec", &floor_path);
    let min_sweep_speedup = number_for(&floor, "min_sweep_speedup", &floor_path);

    let mut failures = 0usize;
    println!("Performance floor ({bench_path} vs {floor_path}):\n");

    let rates = numbers_for(&bench, "events_per_sec");
    assert!(
        !rates.is_empty(),
        "{bench_path} has no scenario throughput entries"
    );
    for (i, rate) in rates.iter().enumerate() {
        let ok = *rate >= min_events_per_sec;
        if !ok {
            failures += 1;
        }
        println!(
            "  scenario {i}: {rate:.0} events/sec (floor {min_events_per_sec:.0}) {}",
            if ok { "ok" } else { "FAIL" },
        );
    }

    let workers = number_for(&bench, "workers", &bench_path);
    let speedup = number_for(&bench, "speedup", &bench_path);
    if workers >= 2.0 {
        let ok = speedup >= min_sweep_speedup;
        if !ok {
            failures += 1;
        }
        println!(
            "  sweep: {speedup:.2}x over {workers:.0} workers (floor {min_sweep_speedup:.2}x) {}",
            if ok { "ok" } else { "FAIL" },
        );
    } else {
        println!(
            "  sweep: {speedup:.2}x — skipped, fan-out capped at {workers:.0} worker \
             (one-core runner)",
        );
    }

    if failures > 0 {
        println!("\n{failures} floor check(s) FAILED");
        return ExitCode::FAILURE;
    }
    println!("\nall floor checks passed");
    ExitCode::SUCCESS
}
