//! Figure 8: per-phone CPU utilisation while serving SocialNetwork reads
//! then writes.
//!
//! Runs scaled-down phases by default; set `JUNKYARD_FULL=1` for the
//! paper's 120-second phases at 3,000/3,500 QPS.
use junkyard_bench::full_scale;
use junkyard_core::cloudlet_study::figure8_utilization;
use junkyard_core::deployments::{build_deployment, DeploymentKind};
use junkyard_microsim::app::social_network;

fn main() {
    let (read_qps, write_qps, phase_s) = if full_scale() {
        (3_000.0, 3_500.0, 120.0)
    } else {
        (1_500.0, 1_750.0, 20.0)
    };
    let app = social_network();
    let sim = build_deployment(DeploymentKind::PhoneCloudlet, &app, 11).expect("deployment builds");
    println!("Service placement across the ten phones:");
    for node in 0..sim.nodes().len() {
        println!(
            "  {}: {}",
            sim.nodes()[node].name(),
            sim.placement().services_on(node).join(", ")
        );
    }
    let metrics = figure8_utilization(read_qps, write_qps, phase_s, 7).expect("simulation runs");
    println!("\nPer-phone mean CPU utilisation (%) per phase (idle/read/idle/write/idle):");
    let phase = |i: usize| -> (usize, usize) {
        let p = phase_s as usize;
        (i * p, (i + 1) * p)
    };
    for node in metrics.node_utilization() {
        let per_phase: Vec<String> = (0..5)
            .map(|i| {
                let (from, to) = phase(i);
                format!("{:5.1}", node.mean_percent_between(from, to))
            })
            .collect();
        println!("  {:10} {}", node.node(), per_phase.join("  "));
    }
}
