//! Figure 4: smart charging against a synthetic CAISO April.
use junkyard_bench::{emit_chart, emit_table};
use junkyard_core::charging_study::ChargingStudy;

fn main() {
    let result = ChargingStudy::new(2021).run();
    emit_table(&result.summary_table());
    for index in 0..result.outcomes().len() {
        emit_chart(&result.representative_day_chart(index));
    }
}
