//! Traced lifecycle run: executes the quick resilience fleet (the
//! correlated fault plan with retries, hedging to a datacenter standby
//! and the degradation ladder — the richest run the stack expresses)
//! with the sim-time recorder attached, writes the pinned-schema JSONL
//! trace, and renders a per-window timeline of health, routing and the
//! carbon ledger.
//!
//! The binary also *checks* the two core observability invariants on
//! every run:
//!
//! * attaching the recorder changes nothing — the traced
//!   `LifecycleResult` must equal the untraced one bit for bit;
//! * the conservation ledger must close — a `ledger` event keyed
//!   `"violation"` in the trace is a hard failure.
//!
//! Usage: `cargo run --release --bin trace [TRACE_lifecycle.jsonl]`
//! (default output path: `TRACE_lifecycle.jsonl` in the working
//! directory).

use junkyard_core::resilience_study::ResilienceStudy;
use junkyard_obs::{EventKind, EventSource, TraceEvent, TraceRecorder};

fn main() {
    let output = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "TRACE_lifecycle.jsonl".to_owned());

    let study = ResilienceStudy::quick();
    let sim = study.mitigated_fleet().expect("the quick fleet builds");

    let mut recorder = TraceRecorder::new();
    let traced = sim
        .run_with(&mut recorder)
        .expect("the traced run completes");
    let plain = sim.run().expect("the untraced run completes");
    assert_eq!(
        plain, traced,
        "attaching a recorder must not change the result"
    );

    let events: Vec<&TraceEvent> = recorder.events_in_order().map(|(_, e)| e).collect();
    let violations = events
        .iter()
        .filter(|e| e.kind == EventKind::Ledger && e.key == "violation")
        .count();
    assert_eq!(violations, 0, "the conservation ledger must close");

    std::fs::write(&output, recorder.to_jsonl()).expect("trace file is writable");

    // Per-window timeline: health from the result, transitions from the
    // trace (every driver-side event carries its window as `w<N>` in the
    // detail field).
    let health = plain.window_health();
    let window_s = plain.horizon_seconds() / health.len() as f64;
    println!(
        "Traced lifecycle run ({} windows, {} events, written to {output}):\n",
        health.len(),
        recorder.events(),
    );
    println!(
        "  {:>6} {:>10} {:>10} {:>8} {:>8}  transitions",
        "window", "offered", "served", "health", "faults"
    );
    for (w, window) in health.iter().enumerate() {
        let tag = format!("w{w}");
        let in_window =
            |e: &&&TraceEvent| e.detail == tag || e.detail.starts_with(&format!("{tag} "));
        let faults = events
            .iter()
            .filter(|e| e.kind == EventKind::Fault)
            .filter(in_window)
            .count();
        let mut transitions = String::new();
        for kind in [
            EventKind::Route,
            EventKind::Retry,
            EventKind::Hedge,
            EventKind::Degrade,
        ] {
            let n = events
                .iter()
                .filter(|e| e.kind == kind)
                .filter(in_window)
                .count();
            if n > 0 {
                if !transitions.is_empty() {
                    transitions.push(' ');
                }
                transitions.push_str(&format!("{}:{n}", kind.name()));
            }
        }
        println!(
            "  {:>6} {:>10.0} {:>10.0} {:>7.1}% {:>8}  {}",
            w,
            window.offered(),
            window.served(),
            window.success_rate() * 100.0,
            faults,
            transitions,
        );
    }

    println!("\n  carbon ledger (per day, gCO2e):");
    println!(
        "  {:>6} {:>12} {:>12} {:>12} {:>12}",
        "day", "operational", "embodied", "retry", "total"
    );
    for (day, entry) in plain.day_ledger().iter().enumerate() {
        println!(
            "  {:>6} {:>12.3} {:>12.3} {:>12.3} {:>12.3}",
            day,
            entry.operational().grams(),
            entry.embodied().grams(),
            entry.retry_carbon().grams(),
            entry.carbon().grams(),
        );
    }

    let counts = recorder.counts();
    let mut summary = String::new();
    for kind in junkyard_obs::EVENT_KINDS {
        let n = counts[kind.index()];
        if n > 0 {
            if !summary.is_empty() {
                summary.push_str(", ");
            }
            summary.push_str(&format!("{} {}", kind.name(), n));
        }
    }
    let serial_events = recorder
        .events_in_order()
        .filter(|(source, _)| *source == EventSource::Serial)
        .count();
    println!("\n  event counts: {summary}");
    println!(
        "  {} events total ({serial_events} serial-side), {:.0} s simulated horizon, {:.0} s windows",
        recorder.events(),
        plain.horizon_seconds(),
        window_s,
    );
}
