//! Lifecycle study: the Fig. 7-style multi-year amortised gCO2e/request
//! trajectory for two junk-phone cloudlets versus a rented c5.9xlarge,
//! with battery wear, device failures and junkyard replacements simulated
//! day by day.
//!
//! Runs a reduced five-year study by default; set `JUNKYARD_FULL=1` for
//! the ten-year, 24-window full-scale horizon (slower). Writes the
//! trajectory and totals to `LIFECYCLE_study.json` (or the path given as
//! the first argument) so CI can archive them with the perf report.
use std::fmt::Write as _;

use junkyard_bench::{emit_chart, emit_table, full_scale};
use junkyard_core::lifecycle_study::LifecycleStudy;

fn main() {
    let output = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "LIFECYCLE_study.json".to_owned());
    let study = if full_scale() {
        LifecycleStudy::paper_scale()
    } else {
        LifecycleStudy::quick()
    };
    let result = study.run().expect("the lifecycle study builds and runs");
    emit_chart(&result.trajectory_chart());
    emit_table(&result.summary_table());

    let crossover = result.crossover_day();
    match crossover {
        Some(day) => println!(
            "cloudlet lifetime CCI crosses below the datacenter's on day {day} \
             ({:.1} months in)",
            day as f64 / 30.4
        ),
        None => println!("cloudlet lifetime CCI never crosses below the datacenter's"),
    }
    println!(
        "after {} years: cloudlets {:.4} vs datacenter {:.4} mgCO2e/request ({:.1}x advantage)",
        result.cloudlet().years(),
        result.cloudlet().grams_per_request().unwrap_or(0.0) * 1_000.0,
        result.datacenter().grams_per_request().unwrap_or(0.0) * 1_000.0,
        result.lifetime_advantage(),
    );
    println!(
        "cloudlet fleet events: {} battery packs, {} device failures, {} junkyard refills",
        result.cloudlet().total_battery_replacements(),
        result.cloudlet().total_device_failures(),
        result.cloudlet().total_devices_replaced(),
    );

    let mut json = String::new();
    json.push_str("{\n  \"study\": \"lifecycle\",\n");
    let _ = writeln!(
        json,
        "  \"years\": {},\n  \"crossover_day\": {},",
        result.cloudlet().years(),
        crossover.map_or("null".to_owned(), |d| d.to_string()),
    );
    for (key, lifecycle) in [
        ("cloudlet", result.cloudlet()),
        ("datacenter", result.datacenter()),
    ] {
        let trajectory: Vec<String> = lifecycle
            .yearly_trajectory()
            .iter()
            .map(|(year, grams)| format!("[{year}, {grams:.9}]"))
            .collect();
        let _ = writeln!(
            json,
            "  \"{key}\": {{\"requests\": {:.0}, \"operational_kg\": {:.3}, \
             \"embodied_kg\": {:.3}, \"battery_replacements\": {}, \"device_failures\": {}, \
             \"grams_per_request\": {:.9}, \"trajectory\": [{}]}},",
            lifecycle.total_requests(),
            lifecycle.total_operational().kilograms(),
            lifecycle.total_embodied().kilograms(),
            lifecycle.total_battery_replacements(),
            lifecycle.total_device_failures(),
            lifecycle.grams_per_request().unwrap_or(0.0),
            trajectory.join(", "),
        );
    }
    let _ = writeln!(
        json,
        "  \"lifetime_advantage\": {:.4}\n}}",
        result.lifetime_advantage()
    );
    std::fs::write(&output, &json).expect("report file is writable");
    println!("wrote {output}");
}
