//! Fleet study: carbon-aware routing across two junk-phone cloudlets and a
//! datacenter backend under a diurnal load, versus the paper's static
//! placement — the coupled extension of Figures 7–9.
//!
//! Runs a reduced study by default; set `JUNKYARD_FULL=1` for the
//! 24-window full-scale day (slower).
use junkyard_bench::{emit_chart, emit_table, full_scale};
use junkyard_core::fleet_study::FleetStudy;

fn main() {
    let study = if full_scale() {
        FleetStudy::paper_scale()
    } else {
        FleetStudy::quick()
    };
    let result = study.run().expect("the fleet builds and runs");
    emit_chart(&result.chart());
    emit_table(&result.table());
    let base = result
        .baseline()
        .grams_per_request()
        .expect("the schedule offers traffic");
    let aware = result
        .carbon_aware()
        .grams_per_request()
        .expect("the schedule offers traffic");
    println!("static placement:     {:.4} mgCO2e/request", base * 1_000.0);
    println!(
        "carbon-aware routing: {:.4} mgCO2e/request",
        aware * 1_000.0
    );
    println!(
        "carbon-aware saves {:.1}% ({} windows, {} sites)",
        result.savings_percent(),
        result.baseline().windows(),
        result.baseline().site_names().len(),
    );
}
