//! Table 2: power draw versus CPU load and the light-medium average.
use junkyard_bench::emit_table;
use junkyard_core::tables::table2;

fn main() {
    emit_table(&table2());
}
