//! Figure 2: single-device lifetime CCI for SGEMM, PDF rendering and Dijkstra.
use junkyard_bench::emit_chart;
use junkyard_core::single_device::SingleDeviceStudy;
use junkyard_devices::benchmark::Benchmark;

fn main() {
    for benchmark in Benchmark::CCI_FIGURES {
        emit_chart(&SingleDeviceStudy::new(benchmark).run_paper_devices());
    }
}
