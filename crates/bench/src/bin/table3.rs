//! Table 3: Nexus 4 component embodied carbon and the compute-node reuse factor.
use junkyard_bench::emit_table;
use junkyard_core::tables::table3;

fn main() {
    let (table, reuse_factor) = table3();
    emit_table(&table);
    println!("Reuse factor of the compute-node role: {reuse_factor:.2} (paper: 0.85)");
}
