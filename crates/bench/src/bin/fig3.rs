//! Figure 3: thermal stress test of five phones in a sealed Styrofoam box.
use junkyard_bench::{emit_chart, emit_table};
use junkyard_core::thermal_study::run_thermal_study;

fn main() {
    let result = run_thermal_study();
    emit_chart(&result.temperature_chart(true));
    emit_chart(&result.temperature_chart(false));
    emit_table(&result.summary_table());
    let plan = result.cloudlet_cooling_plan();
    println!(
        "256-phone cloudlet at full load: {:.0} W of heat -> {} COTS fan(s), {:.1} kgCO2e embodied",
        plan.heat_load().value(),
        plan.fans_needed(),
        plan.embodied().kilograms()
    );
}
