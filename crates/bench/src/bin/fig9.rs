//! Figure 9: carbon per request of the phone cloudlet vs a c5.9xlarge.
use junkyard_bench::emit_chart;
use junkyard_carbon::units::TimeSpan;
use junkyard_core::cloudlet_study::{figure9_advantage, figure9_chart, CloudletWorkload};

fn main() {
    let months: Vec<f64> = (1..=54).map(f64::from).collect();
    for workload in CloudletWorkload::ALL {
        emit_chart(&figure9_chart(workload, &months).expect("well-formed calculators"));
        let advantage = figure9_advantage(workload, TimeSpan::from_years(3.0))
            .expect("well-formed calculators");
        println!(
            "{}: phone cloudlet is {advantage:.1}x more carbon-efficient per request after 3 years\n",
            workload.label()
        );
    }
}
