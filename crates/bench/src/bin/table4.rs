//! Table 4 and the Section 5.3 PUE comparison: 50 MW datacenter projections.
use junkyard_bench::emit_table;
use junkyard_core::datacenter_study::DatacenterStudy;
use junkyard_devices::benchmark::Benchmark;

fn main() {
    let study = DatacenterStudy::new();
    emit_table(&study.pue_table());
    emit_table(&study.cci_table().expect("catalog devices have all scores"));
    for benchmark in Benchmark::CCI_FIGURES {
        println!(
            "smartphone advantage on {benchmark}: {:.1}x",
            study
                .smartphone_advantage(benchmark)
                .expect("well-formed calculators")
        );
    }
}
