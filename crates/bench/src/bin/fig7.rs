//! Figure 7: DeathStarBench latency vs throughput, phone cloudlet vs EC2 C5.
//!
//! Runs a reduced sweep by default; set `JUNKYARD_FULL=1` for the
//! paper-scale sweep (slower).
use junkyard_bench::{emit_chart, full_scale};
use junkyard_core::cloudlet_study::{CloudletWorkload, Figure7Study};

fn main() {
    let study = if full_scale() {
        Figure7Study::paper_scale()
    } else {
        Figure7Study::quick()
    };
    for workload in CloudletWorkload::ALL {
        let result = study.run(workload).expect("deployments build");
        emit_chart(&result.chart(false));
        emit_chart(&result.chart(true));
        println!("Max sustainable throughput for {}:", workload.label());
        for (deployment, qps) in result.saturation_points() {
            println!("  {deployment:12} {qps:?}");
        }
        println!();
    }
}
