//! Section 6.2: deployment cost of the ten-phone cloudlet vs a c5.9xlarge.
use junkyard_bench::emit_table;
use junkyard_carbon::units::TimeSpan;
use junkyard_core::cost_study::cost_table;

fn main() {
    emit_table(&cost_table(TimeSpan::from_years(3.0)));
}
