//! Figure 1: smartphone capability trends versus AWS T4g instances.
use junkyard_bench::emit_chart;
use junkyard_core::tables::figure1_charts;

fn main() {
    for chart in figure1_charts() {
        emit_chart(&chart);
    }
}
