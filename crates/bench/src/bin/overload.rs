//! Overload study: drop and tail behaviour of the Pixel 3A cloudlet
//! pushed 2–10× past its sustainable rate, under each queue discipline
//! (centralized vs distributed FCFS) and core layout (combined vs
//! dedicated network cores), with 64-deep bounded application queues.
//!
//! Runs a reduced study by default; set `JUNKYARD_FULL=1` for the full
//! 0.25×–10× multiplier grid with longer measurements. Writes the knee
//! and every variant's curve to `OVERLOAD_study.json` (or the path given
//! as the first argument) so CI can archive it with the perf report.
use std::fmt::Write as _;

use junkyard_bench::full_scale;
use junkyard_core::overload_study::OverloadStudy;

fn main() {
    let output = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "OVERLOAD_study.json".to_owned());
    let study = if full_scale() {
        OverloadStudy::paper_scale()
    } else {
        OverloadStudy::quick()
    };
    let result = study.run().expect("the overload study builds and runs");

    println!(
        "knee of the default deployment: {:.0} qps (queue bound {} slots)",
        result.knee_qps(),
        result.queue_size()
    );
    for variant in result.curves() {
        let worst = variant
            .curve()
            .points()
            .iter()
            .map(|p| p.drop_fraction())
            .fold(0.0, f64::max);
        println!("  {:<22} worst drop fraction {:.3}", variant.label(), worst);
    }
    println!(
        "drop-free below the knee: {}; every variant sheds at >=2x: {}",
        result.drop_free_below_knee(),
        result.all_variants_drop_at(2.0)
    );

    let mut json = String::new();
    json.push_str("{\n  \"study\": \"overload\",\n");
    let _ = writeln!(
        json,
        "  \"knee_qps\": {:.3},\n  \"queue_size\": {},\n  \"multipliers\": [{}],",
        result.knee_qps(),
        result.queue_size(),
        result
            .multipliers()
            .iter()
            .map(|m| format!("{m}"))
            .collect::<Vec<_>>()
            .join(", "),
    );
    json.push_str("  \"variants\": [\n");
    let variants: Vec<String> = result
        .curves()
        .iter()
        .map(|variant| {
            let points: Vec<String> = variant
                .curve()
                .points()
                .iter()
                .map(|p| {
                    format!(
                        "{{\"qps\": {:.3}, \"median_ms\": {:.3}, \"tail_ms\": {:.3}, \
                         \"drop_fraction\": {:.6}}}",
                        p.qps(),
                        p.median_ms(),
                        p.tail_ms(),
                        p.drop_fraction()
                    )
                })
                .collect();
            format!(
                "    {{\"label\": \"{}\", \"points\": [{}]}}",
                variant.label(),
                points.join(", ")
            )
        })
        .collect();
    json.push_str(&variants.join(",\n"));
    json.push_str("\n  ],\n");
    let _ = writeln!(
        json,
        "  \"drop_free_below_knee\": {},\n  \"all_drop_at_2x\": {}\n}}",
        result.drop_free_below_knee(),
        result.all_variants_drop_at(2.0)
    );
    std::fs::write(&output, &json).expect("report file is writable");
    println!("wrote {output}");
}
