//! Resilience study: the carbon price of availability on the two-region
//! CAISO cloudlet setup under an identical correlated fault plan — grid
//! outages, firmware batches and thermal shutdowns seen through a stale
//! health view.
//!
//! Compares N+1 overprovisioning, retry-to-fallback (hedged to a leased
//! datacenter standby) and degrade-in-place against the unmitigated run
//! and a fault-free baseline that must be bit-identical to the
//! pre-fault-layer serving path.
//!
//! Runs a reduced study by default; set `JUNKYARD_FULL=1` for the full
//! one-year hourly-window horizon. Writes every strategy's availability
//! and carbon accounting to `RESILIENCE_study.json` (or the path given
//! as the first argument) so CI can archive it with the perf report.
use std::fmt::Write as _;

use junkyard_bench::full_scale;
use junkyard_core::resilience_study::ResilienceStudy;

fn main() {
    let output = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "RESILIENCE_study.json".to_owned());
    let study = if full_scale() {
        ResilienceStudy::paper_scale()
    } else {
        ResilienceStudy::quick()
    };
    let result = study.run().expect("the resilience study builds and runs");

    assert!(
        result.baseline_bit_identical(),
        "disabled fault machinery must be bit-identical to the plain run"
    );
    assert_eq!(
        result.baseline().result().failed_requests(),
        0.0,
        "the fault-free baseline must not fail a single request"
    );

    println!(
        "baseline bit-identical: {}; strategies under the shared fault plan:",
        result.baseline_bit_identical()
    );
    for s in result.strategies() {
        println!(
            "  {:<20} availability {:.6} ({:.2} nines)  {:.6} gCO2e/req  retry {:.1} g",
            s.name(),
            s.availability(),
            s.nines(),
            s.grams_per_request(),
            s.retry_grams(),
        );
    }
    if let Some(price) = result.grams_per_nine("unmitigated", "retry-to-fallback") {
        println!("price of a nine, unmitigated -> retry-to-fallback: {price:.6} gCO2e/request");
    }

    let mut json = String::new();
    json.push_str("{\n  \"study\": \"resilience\",\n");
    let _ = writeln!(
        json,
        "  \"baseline_bit_identical\": {},",
        result.baseline_bit_identical()
    );
    json.push_str("  \"strategies\": [\n");
    let strategies: Vec<String> = result
        .strategies()
        .iter()
        .map(|s| {
            let r = s.result();
            format!(
                "    {{\"name\": \"{}\", \"description\": \"{}\", \
                 \"availability\": {:.9}, \"nines\": {:.4}, \
                 \"served_requests\": {:.3}, \"failed_requests\": {:.3}, \
                 \"declined_requests\": {:.3}, \"queue_dropped_requests\": {:.3}, \
                 \"low_priority_shed_requests\": {:.3}, \
                 \"retried_ok_requests\": {:.3}, \"hedged_requests\": {:.3}, \
                 \"rerouted_requests\": {:.3}, \"brownout_requests\": {:.3}, \
                 \"downtime_windows\": {}, \"goodput_qps\": {:.3}, \
                 \"operational_g\": {:.3}, \"embodied_g\": {:.3}, \
                 \"retry_carbon_g\": {:.3}, \"total_carbon_g\": {:.3}, \
                 \"grams_per_request\": {:.9}}}",
                s.name(),
                s.description(),
                s.availability(),
                s.nines(),
                r.total_requests(),
                r.failed_requests(),
                r.router_declined_requests(),
                r.queue_dropped_requests(),
                r.low_priority_shed_requests(),
                r.retried_ok_requests(),
                r.hedged_requests(),
                r.rerouted_requests(),
                r.brownout_requests(),
                r.downtime_windows(0.5),
                r.goodput_qps(),
                r.total_operational().grams(),
                r.total_embodied().grams(),
                r.total_retry_carbon().grams(),
                r.total_carbon().grams(),
                s.grams_per_request(),
            )
        })
        .collect();
    json.push_str(&strategies.join(",\n"));
    json.push_str("\n  ],\n");
    let price = |worse: &str, better: &str| {
        result
            .grams_per_nine(worse, better)
            .map_or_else(|| "null".to_owned(), |p| format!("{p:.9}"))
    };
    let _ = writeln!(
        json,
        "  \"grams_per_nine\": {{\n    \"n_plus_one\": {},\n    \"retry_to_fallback\": {},\n    \
         \"degrade_in_place\": {}\n  }}\n}}",
        price("unmitigated", "n-plus-one"),
        price("unmitigated", "retry-to-fallback"),
        price("unmitigated", "degrade-in-place"),
    );
    std::fs::write(&output, &json).expect("report file is writable");
    println!("wrote {output}");
}
