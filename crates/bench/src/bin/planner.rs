//! Planner study: the SLO-constrained, carbon-minimal provisioning
//! search over the two-region CAISO deployment space, with the
//! hand-built lifecycle cloudlet scored as the baseline.
//!
//! Runs the reduced study by default; set `JUNKYARD_FULL=1` for the
//! full-scale space and fidelity ladder (slower). Writes the frontier,
//! the argmin, the baseline comparison and the search bookkeeping to
//! `PLANNER_study.json` (or the path given as the first argument) so CI
//! can archive them with the perf report.

use std::fmt::Write as _;

use junkyard_bench::{emit_table, full_scale};
use junkyard_core::planner_study::PlannerStudy;

fn main() {
    let output = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "PLANNER_study.json".to_owned());
    let study = if full_scale() {
        PlannerStudy::paper_scale()
    } else {
        PlannerStudy::quick()
    };
    let result = study.run().expect("the planner study builds and runs");
    emit_table(&result.frontier_table());

    let outcome = result.outcome();
    let best = outcome
        .best()
        .expect("the study's space contains feasible deployments");
    let baseline = result.baseline();
    println!(
        "argmin: {} at {:.4} mgCO2e/request ({} phones, p99 {:.1} ms)",
        best.label(),
        best.evaluation().grams_per_request().unwrap_or(0.0) * 1_000.0,
        best.evaluation().devices(),
        best.evaluation().worst_p99_ms(),
    );
    println!(
        "hand-built baseline: {} at {:.4} mgCO2e/request -> planner improvement {:.2}%",
        baseline.label(),
        baseline.evaluation().grams_per_request().unwrap_or(0.0) * 1_000.0,
        result.improvement_percent(),
    );
    println!(
        "search: {} candidates enumerated, {} screened out, rungs {:?}, \
         {} simulations, cache {}/{} lookups hit ({:.1}%)",
        outcome.candidates_enumerated(),
        outcome.screened_out(),
        outcome.rung_populations(),
        outcome.fresh_evaluations(),
        outcome.cache_hits(),
        outcome.cache_hits() + outcome.cache_misses(),
        outcome.cache_hit_rate() * 100.0,
    );

    let mut json = String::new();
    json.push_str("{\n  \"study\": \"planner\",\n");
    let slo = result.slo();
    let _ = writeln!(
        json,
        "  \"slo\": {{\"median_ms\": {}, \"tail_ms\": {}, \"max_shed_fraction\": {}}},",
        slo.median_limit_ms(),
        slo.tail_limit_ms(),
        slo.max_shed_fraction(),
    );
    let deployment_json = |planned: &junkyard_planner::PlannedDeployment| {
        let e = planned.evaluation();
        format!(
            "{{\"label\": \"{}\", \"devices\": {}, \"grams_per_request\": {:.9}, \
             \"p99_ms\": {:.3}, \"tail_ms\": {:.3}, \"median_ms\": {:.3}, \"shed_fraction\": {:.6}}}",
            planned.label(),
            e.devices(),
            e.grams_per_request().unwrap_or(0.0),
            e.worst_p99_ms(),
            e.worst_tail_ms(),
            e.worst_median_ms(),
            e.shed_fraction(),
        )
    };
    let frontier: Vec<String> = outcome.frontier().iter().map(deployment_json).collect();
    let _ = writeln!(
        json,
        "  \"frontier\": [\n    {}\n  ],",
        frontier.join(",\n    ")
    );
    let _ = writeln!(json, "  \"best\": {},", deployment_json(best));
    let _ = writeln!(json, "  \"baseline\": {},", deployment_json(baseline));
    let _ = writeln!(
        json,
        "  \"improvement_percent\": {:.4},\n  \"matches_or_beats_baseline\": {},",
        result.improvement_percent(),
        result.matches_or_beats_baseline(),
    );
    let _ = writeln!(
        json,
        "  \"search\": {{\"candidates_enumerated\": {}, \"screened_out\": {}, \
         \"rung_populations\": {:?}, \"fresh_evaluations\": {}, \"cache_hits\": {}, \
         \"cache_misses\": {}, \"cache_hit_rate\": {:.6}}}\n}}",
        outcome.candidates_enumerated(),
        outcome.screened_out(),
        outcome.rung_populations(),
        outcome.fresh_evaluations(),
        outcome.cache_hits(),
        outcome.cache_misses(),
        outcome.cache_hit_rate(),
    );
    std::fs::write(&output, &json).expect("report file is writable");
    println!("wrote {output}");
}
