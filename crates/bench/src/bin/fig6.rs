//! Figure 6: effect of the energy mix on CCI (Pixel 3A vs PowerEdge, SGEMM).
use junkyard_bench::emit_chart;
use junkyard_core::energy_mix::energy_mix_chart;

fn main() {
    emit_chart(&energy_mix_chart().expect("catalog devices have SGEMM scores"));
}
