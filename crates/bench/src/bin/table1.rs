//! Table 1: GeekBench performance and server-equivalence (N) per device.
use junkyard_bench::emit_table;
use junkyard_core::tables::table1;

fn main() {
    emit_table(&table1());
}
