//! Figure 5: cluster-level lifetime CCI for the five Section 5.2 cloudlets.
use junkyard_bench::emit_chart;
use junkyard_core::cluster_cci::{nexus4_vs_new_server_crossover, ClusterCciStudy};
use junkyard_devices::benchmark::Benchmark;
use junkyard_grid::regime::PowerRegime;

fn main() {
    for regime in [PowerRegime::CaliforniaMix, PowerRegime::AlwaysSolar] {
        for benchmark in Benchmark::CCI_FIGURES {
            let chart = ClusterCciStudy::new(benchmark, regime)
                .run_paper_cloudlets()
                .expect("catalog devices have all benchmark scores");
            emit_chart(&chart);
        }
    }
    let crossover =
        nexus4_vs_new_server_crossover(Benchmark::Sgemm, PowerRegime::CaliforniaMix, 120)
            .expect("calculators are well formed");
    println!(
        "Nexus 4 cluster vs new PowerEdge crossover on SGEMM: {:?} months (paper: ~45)",
        crossover
    );
}
