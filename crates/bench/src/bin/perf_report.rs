//! Engine performance report: runs fixed microsim scenarios (the two
//! DeathStarBench applications at three load points each, plus a serial
//! versus threaded sweep and the quick fleet study) with wall-clock timing
//! and writes the numbers to `BENCH_microsim.json` so the engine's perf
//! trajectory — including the coupled fleet path — is tracked across PRs.
//!
//! Usage: `cargo run --release --bin perf_report [output.json]`
//! (default output path: `BENCH_microsim.json` in the working directory).

use std::fmt::Write as _;
use std::time::Instant;

use junkyard_core::fleet_study::FleetStudy;
use junkyard_core::lifecycle_study::LifecycleStudy;
use junkyard_core::planner_study::PlannerStudy;

use junkyard_microsim::app::{hotel_reservation, social_network, SN_COMPOSE_POST};
use junkyard_microsim::compiled::CompiledSim;
use junkyard_microsim::network::NetworkModel;
use junkyard_microsim::node::ten_pixel_cloudlet;
use junkyard_microsim::placement::Placement;
use junkyard_microsim::sim::{Simulation, Workload};
use junkyard_microsim::sweep::SweepConfig;

/// Timed result of one fixed scenario.
struct ScenarioResult {
    app: &'static str,
    request_type: Option<&'static str>,
    qps: f64,
    duration_s: f64,
    offered: usize,
    events: u64,
    wall_ms: f64,
    events_per_sec: f64,
    median_ms: f64,
    tail_ms: f64,
}

/// Runs one scenario three times and keeps the fastest wall clock (the
/// metrics are deterministic, so any run's metrics serve).
fn run_scenario(
    sim: &CompiledSim,
    app: &'static str,
    request_type: Option<&'static str>,
    qps: f64,
    duration_s: f64,
) -> ScenarioResult {
    let workload = Workload::steady(qps, duration_s, request_type, 42);
    let mut best_ms = f64::INFINITY;
    let mut metrics = None;
    for _ in 0..3 {
        let start = Instant::now();
        let run = sim.run(&workload).expect("fixed scenarios run");
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1_000.0);
        metrics = Some(run);
    }
    let metrics = metrics.expect("at least one timed run");
    let stats = metrics.latency_stats();
    ScenarioResult {
        app,
        request_type,
        qps,
        duration_s,
        offered: metrics.offered(),
        events: metrics.events_processed(),
        wall_ms: best_ms,
        events_per_sec: metrics.events_processed() as f64 / (best_ms / 1_000.0),
        median_ms: stats.median_ms().unwrap_or(0.0),
        tail_ms: stats.tail_ms().unwrap_or(0.0),
    }
}

fn phone_cloudlet(app: junkyard_microsim::app::Application) -> Simulation {
    let nodes = ten_pixel_cloudlet();
    let placement = Placement::swarm_spread(&app, &nodes, 11).expect("cloudlet fits");
    Simulation::new(app, nodes, placement, NetworkModel::phone_wifi()).expect("sim builds")
}

fn main() {
    let output = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_microsim.json".to_owned());

    let social = phone_cloudlet(social_network()).compile();
    let hotel = phone_cloudlet(hotel_reservation()).compile();

    let load_points = [1_000.0, 3_000.0, 5_000.0];
    let mut scenarios = Vec::new();
    for qps in load_points {
        scenarios.push(run_scenario(
            &social,
            "SocialNetwork",
            Some(SN_COMPOSE_POST),
            qps,
            2.0,
        ));
    }
    for qps in load_points {
        scenarios.push(run_scenario(&hotel, "HotelReservation", None, qps, 2.0));
    }

    // Serial vs threaded sweep over eight load points (same curve either
    // way; the ratio tracks the threading win on this machine).
    let sweep_points: Vec<f64> = (1..=8).map(|i| f64::from(i) * 600.0).collect();
    let sweep = SweepConfig::new(sweep_points.clone(), 2.0, 0.5).request_type(SN_COMPOSE_POST);
    let serial_start = Instant::now();
    let serial_curve = sweep
        .clone()
        .parallelism(1)
        .run_compiled("phones", &social)
        .expect("sweep runs");
    let sweep_serial_ms = serial_start.elapsed().as_secs_f64() * 1_000.0;
    let threaded_start = Instant::now();
    let threaded_curve = sweep.run_compiled("phones", &social).expect("sweep runs");
    let sweep_threaded_ms = threaded_start.elapsed().as_secs_f64() * 1_000.0;
    assert_eq!(
        serial_curve, threaded_curve,
        "threaded sweeps must be point-identical to serial ones"
    );

    // The coupled fleet path: the quick two-region study (both routing
    // policies), timed end to end so regressions in the fleet layer show
    // up alongside the engine scenarios.
    let fleet_start = Instant::now();
    let fleet = FleetStudy::quick().run().expect("the fleet study runs");
    let fleet_wall_ms = fleet_start.elapsed().as_secs_f64() * 1_000.0;
    let fleet_cells = fleet.baseline().cells().len() + fleet.carbon_aware().cells().len();

    // The multi-year lifecycle path: a reduced two-year run of both
    // deployments (cloudlet cohorts with battery wear and failures, plus
    // the leased datacenter), timed end to end.
    let lifecycle_start = Instant::now();
    let lifecycle = LifecycleStudy::quick()
        .years(2)
        .run()
        .expect("the lifecycle study runs");
    let lifecycle_wall_ms = lifecycle_start.elapsed().as_secs_f64() * 1_000.0;
    let lifecycle_cells = lifecycle.cloudlet().cells().len() + lifecycle.datacenter().cells().len();

    // The provisioning search: the quick planner study (enumerate,
    // screen, successive halving, local search), timed end to end so the
    // search layer's wall clock, evaluation count and cache hit rate are
    // tracked across PRs.
    let planner_start = Instant::now();
    let planner = PlannerStudy::quick().run().expect("the planner study runs");
    let planner_wall_ms = planner_start.elapsed().as_secs_f64() * 1_000.0;
    let planner_outcome = planner.outcome();
    assert!(
        planner_outcome.cache_hit_rate() > 0.0,
        "the planner search must record cache hits (mutation rounds revisit elites)"
    );

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"microsim_engine\",\n  \"scenarios\": [\n");
    for (i, s) in scenarios.iter().enumerate() {
        let rt = s
            .request_type
            .map_or("null".to_owned(), |r| format!("\"{r}\""));
        let _ = writeln!(
            json,
            "    {{\"app\": \"{}\", \"request_type\": {}, \"qps\": {}, \"duration_s\": {}, \
             \"offered\": {}, \"events\": {}, \"wall_ms\": {:.3}, \"events_per_sec\": {:.0}, \
             \"median_ms\": {:.3}, \"tail_ms\": {:.3}}}{}",
            s.app,
            rt,
            s.qps,
            s.duration_s,
            s.offered,
            s.events,
            s.wall_ms,
            s.events_per_sec,
            s.median_ms,
            s.tail_ms,
            if i + 1 < scenarios.len() { "," } else { "" },
        );
    }
    let _ = writeln!(
        json,
        "  ],\n  \"sweep\": {{\"points\": {}, \"wall_ms_serial\": {:.3}, \
         \"wall_ms_threaded\": {:.3}}},",
        sweep_points.len(),
        sweep_serial_ms,
        sweep_threaded_ms,
    );
    let _ = writeln!(
        json,
        "  \"fleet\": {{\"windows\": {}, \"sites\": {}, \"cells\": {}, \"wall_ms\": {:.3}, \
         \"static_mg_per_request\": {:.6}, \"carbon_aware_mg_per_request\": {:.6}}},",
        fleet.baseline().windows(),
        fleet.baseline().site_names().len(),
        fleet_cells,
        fleet_wall_ms,
        fleet.baseline().grams_per_request().unwrap_or(0.0) * 1_000.0,
        fleet.carbon_aware().grams_per_request().unwrap_or(0.0) * 1_000.0,
    );
    let _ = writeln!(
        json,
        "  \"lifecycle\": {{\"years\": {}, \"cells\": {}, \"wall_ms\": {:.3}, \
         \"cloudlet_mg_per_request\": {:.6}, \"datacenter_mg_per_request\": {:.6}, \
         \"crossover_day\": {}}},",
        lifecycle.cloudlet().years(),
        lifecycle_cells,
        lifecycle_wall_ms,
        lifecycle.cloudlet().grams_per_request().unwrap_or(0.0) * 1_000.0,
        lifecycle.datacenter().grams_per_request().unwrap_or(0.0) * 1_000.0,
        lifecycle
            .crossover_day()
            .map_or("null".to_owned(), |d| d.to_string()),
    );
    let _ = write!(
        json,
        "  \"planner\": {{\"wall_ms\": {:.3}, \"candidates_enumerated\": {}, \
         \"screened_out\": {}, \"candidates_evaluated\": {}, \"cache_hits\": {}, \
         \"cache_misses\": {}, \"cache_hit_rate\": {:.6}, \"frontier_size\": {}, \
         \"best_mg_per_request\": {:.6}, \"baseline_mg_per_request\": {:.6}, \
         \"improvement_percent\": {:.4}}}\n}}\n",
        planner_wall_ms,
        planner_outcome.candidates_enumerated(),
        planner_outcome.screened_out(),
        planner_outcome.fresh_evaluations(),
        planner_outcome.cache_hits(),
        planner_outcome.cache_misses(),
        planner_outcome.cache_hit_rate(),
        planner_outcome.frontier().len(),
        planner
            .best()
            .and_then(|b| b.evaluation().grams_per_request())
            .unwrap_or(0.0)
            * 1_000.0,
        planner
            .baseline()
            .evaluation()
            .grams_per_request()
            .unwrap_or(0.0)
            * 1_000.0,
        planner.improvement_percent(),
    );

    std::fs::write(&output, &json).expect("report file is writable");

    println!("Engine perf report (written to {output}):\n");
    println!(
        "  {:16} {:20} {:>7} {:>9} {:>9} {:>12} {:>10}",
        "app", "request type", "qps", "offered", "wall ms", "events/sec", "median ms"
    );
    for s in &scenarios {
        println!(
            "  {:16} {:20} {:>7} {:>9} {:>9.2} {:>12.0} {:>10.2}",
            s.app,
            s.request_type.unwrap_or("(mixed)"),
            s.qps,
            s.offered,
            s.wall_ms,
            s.events_per_sec,
            s.median_ms,
        );
    }
    println!(
        "\n  sweep ({} points): serial {:.1} ms, threaded {:.1} ms",
        sweep_points.len(),
        sweep_serial_ms,
        sweep_threaded_ms
    );
    println!(
        "  fleet study ({} cells across both policies): {:.1} ms, \
         static {:.4} vs carbon-aware {:.4} mgCO2e/request",
        fleet_cells,
        fleet_wall_ms,
        fleet.baseline().grams_per_request().unwrap_or(0.0) * 1_000.0,
        fleet.carbon_aware().grams_per_request().unwrap_or(0.0) * 1_000.0,
    );
    println!(
        "  lifecycle study ({} year-site cells, both deployments): {:.1} ms, \
         cloudlets {:.4} vs datacenter {:.4} mgCO2e/request",
        lifecycle_cells,
        lifecycle_wall_ms,
        lifecycle.cloudlet().grams_per_request().unwrap_or(0.0) * 1_000.0,
        lifecycle.datacenter().grams_per_request().unwrap_or(0.0) * 1_000.0,
    );
    println!(
        "  planner search ({} candidates, {} simulations, {:.0}% cache hits): {:.1} ms, \
         argmin {:.4} vs hand-built {:.4} mgCO2e/request",
        planner_outcome.candidates_enumerated(),
        planner_outcome.fresh_evaluations(),
        planner_outcome.cache_hit_rate() * 100.0,
        planner_wall_ms,
        planner
            .best()
            .and_then(|b| b.evaluation().grams_per_request())
            .unwrap_or(0.0)
            * 1_000.0,
        planner
            .baseline()
            .evaluation()
            .grams_per_request()
            .unwrap_or(0.0)
            * 1_000.0,
    );
}
