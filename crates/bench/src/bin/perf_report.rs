//! Engine performance report: runs fixed microsim scenarios (the two
//! DeathStarBench applications at three load points each, plus a serial
//! versus threaded sweep and the quick fleet study) with wall-clock timing
//! and writes the numbers to `BENCH_microsim.json` so the engine's perf
//! trajectory — including the coupled fleet path — is tracked across PRs.
//!
//! Every top-level phase runs under the serial-side
//! [`junkyard_obs::Profiler`]: the report gains a `"profile"` section
//! (per-stage inclusive wall ms) and a collapsed-stack sidecar
//! (`PROFILE.folded`, flamegraph-ready) next to the JSON. The sweep
//! entry reports the worker count actually used and each worker's
//! deterministic event share, so a silently capped fan-out (one-core
//! runner, `available_parallelism() == 1`) is visible in the numbers
//! instead of masquerading as a threading regression.
//!
//! Usage: `cargo run --release --bin perf_report [output.json [profile.folded]]`
//! (defaults: `BENCH_microsim.json` and `PROFILE.folded` in the working
//! directory).

use std::fmt::Write as _;
use std::time::Instant;

use junkyard_core::fleet_study::FleetStudy;
use junkyard_core::lifecycle_study::LifecycleStudy;
use junkyard_core::planner_study::PlannerStudy;

use junkyard_microsim::app::{hotel_reservation, social_network, SN_COMPOSE_POST};
use junkyard_microsim::compiled::CompiledSim;
use junkyard_microsim::network::NetworkModel;
use junkyard_microsim::node::ten_pixel_cloudlet;
use junkyard_microsim::placement::Placement;
use junkyard_microsim::sim::{Simulation, Workload};
use junkyard_microsim::sweep::SweepConfig;
use junkyard_obs::{Profiler, TraceRecorder};

/// Timed result of one fixed scenario.
struct ScenarioResult {
    app: &'static str,
    request_type: Option<&'static str>,
    qps: f64,
    duration_s: f64,
    offered: usize,
    events: u64,
    wall_ms: f64,
    events_per_sec: f64,
    median_ms: f64,
    tail_ms: f64,
}

/// Runs one scenario three times and keeps the fastest wall clock (the
/// metrics are deterministic, so any run's metrics serve).
fn run_scenario(
    sim: &CompiledSim,
    app: &'static str,
    request_type: Option<&'static str>,
    qps: f64,
    duration_s: f64,
) -> ScenarioResult {
    let workload = Workload::steady(qps, duration_s, request_type, 42);
    let mut best_ms = f64::INFINITY;
    let mut metrics = None;
    for _ in 0..3 {
        let start = Instant::now();
        let run = sim.run(&workload).expect("fixed scenarios run");
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1_000.0);
        metrics = Some(run);
    }
    let metrics = metrics.expect("at least one timed run");
    let stats = metrics.latency_stats();
    ScenarioResult {
        app,
        request_type,
        qps,
        duration_s,
        offered: metrics.offered(),
        events: metrics.events_processed(),
        wall_ms: best_ms,
        events_per_sec: metrics.events_processed() as f64 / (best_ms / 1_000.0),
        median_ms: stats.median_ms().unwrap_or(0.0),
        tail_ms: stats.tail_ms().unwrap_or(0.0),
    }
}

fn phone_cloudlet(app: junkyard_microsim::app::Application) -> Simulation {
    let nodes = ten_pixel_cloudlet();
    let placement = Placement::swarm_spread(&app, &nodes, 11).expect("cloudlet fits");
    Simulation::new(app, nodes, placement, NetworkModel::phone_wifi()).expect("sim builds")
}

fn main() {
    let output = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_microsim.json".to_owned());
    let folded_output = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "PROFILE.folded".to_owned());

    let mut profiler = Profiler::new();
    profiler.start("perf_report");

    let (social, hotel) = profiler.time("compile", || {
        (
            phone_cloudlet(social_network()).compile(),
            phone_cloudlet(hotel_reservation()).compile(),
        )
    });

    let load_points = [1_000.0, 3_000.0, 5_000.0];
    let mut scenarios = Vec::new();
    profiler.start("scenarios");
    for qps in load_points {
        scenarios.push(profiler.time(&format!("social-{qps}qps"), || {
            run_scenario(&social, "SocialNetwork", Some(SN_COMPOSE_POST), qps, 2.0)
        }));
    }
    for qps in load_points {
        scenarios.push(profiler.time(&format!("hotel-{qps}qps"), || {
            run_scenario(&hotel, "HotelReservation", None, qps, 2.0)
        }));
    }
    profiler.stop();

    // Serial vs threaded sweep over eight load points (same curve either
    // way; the ratio tracks the threading win on this machine).
    profiler.start("sweep");
    let sweep_points: Vec<f64> = (1..=8).map(|i| f64::from(i) * 600.0).collect();
    let sweep = SweepConfig::new(sweep_points.clone(), 2.0, 0.5).request_type(SN_COMPOSE_POST);
    let serial_curve = profiler.time("serial", || {
        sweep
            .clone()
            .parallelism(1)
            .run_compiled("phones", &social)
            .expect("sweep runs")
    });
    let threaded_curve = profiler.time("threaded", || {
        sweep.run_compiled("phones", &social).expect("sweep runs")
    });
    assert_eq!(
        serial_curve, threaded_curve,
        "threaded sweeps must be point-identical to serial ones"
    );
    let sweep_serial_ms = profiler
        .stage_ms("perf_report;sweep;serial")
        .expect("serial stage timed");
    let sweep_threaded_ms = profiler
        .stage_ms("perf_report;sweep;threaded")
        .expect("threaded stage timed");
    // The same sweep once more with the recorder attached: the per-point
    // engine event counts give each worker's deterministic share of the
    // work (wall clocks cannot cross the fan-out boundary).
    let sweep_workers = sweep.effective_workers();
    let mut sweep_recorder = TraceRecorder::new();
    let traced_sweep = profiler.time("traced", || {
        sweep
            .run_compiled_traced("phones", &social, &mut sweep_recorder)
            .expect("traced sweep runs")
    });
    assert_eq!(
        traced_sweep.curve, threaded_curve,
        "the traced sweep must reproduce the untraced curve"
    );
    let sweep_utilisation = traced_sweep.worker_utilisation();
    profiler.stop();

    // The coupled fleet path: the quick two-region study (both routing
    // policies), timed end to end so regressions in the fleet layer show
    // up alongside the engine scenarios.
    let fleet = profiler.time("fleet", || {
        FleetStudy::quick().run().expect("the fleet study runs")
    });
    let fleet_wall_ms = profiler
        .stage_ms("perf_report;fleet")
        .expect("fleet stage timed");
    let fleet_cells = fleet.baseline().cells().len() + fleet.carbon_aware().cells().len();

    // The multi-year lifecycle path: a reduced two-year run of both
    // deployments (cloudlet cohorts with battery wear and failures, plus
    // the leased datacenter), timed end to end.
    let lifecycle = profiler.time("lifecycle", || {
        LifecycleStudy::quick()
            .years(2)
            .run()
            .expect("the lifecycle study runs")
    });
    let lifecycle_wall_ms = profiler
        .stage_ms("perf_report;lifecycle")
        .expect("lifecycle stage timed");
    let lifecycle_cells = lifecycle.cloudlet().cells().len() + lifecycle.datacenter().cells().len();

    // The provisioning search: the quick planner study (enumerate,
    // screen, successive halving, local search), timed end to end so the
    // search layer's wall clock, evaluation count and cache hit rate are
    // tracked across PRs.
    let planner = profiler.time("planner", || {
        PlannerStudy::quick().run().expect("the planner study runs")
    });
    let planner_wall_ms = profiler
        .stage_ms("perf_report;planner")
        .expect("planner stage timed");
    let planner_outcome = planner.outcome();
    assert!(
        planner_outcome.cache_hit_rate() > 0.0,
        "the planner search must record cache hits (mutation rounds revisit elites)"
    );

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"microsim_engine\",\n  \"scenarios\": [\n");
    for (i, s) in scenarios.iter().enumerate() {
        let rt = s
            .request_type
            .map_or("null".to_owned(), |r| format!("\"{r}\""));
        let _ = writeln!(
            json,
            "    {{\"app\": \"{}\", \"request_type\": {}, \"qps\": {}, \"duration_s\": {}, \
             \"offered\": {}, \"events\": {}, \"wall_ms\": {:.3}, \"events_per_sec\": {:.0}, \
             \"median_ms\": {:.3}, \"tail_ms\": {:.3}}}{}",
            s.app,
            rt,
            s.qps,
            s.duration_s,
            s.offered,
            s.events,
            s.wall_ms,
            s.events_per_sec,
            s.median_ms,
            s.tail_ms,
            if i + 1 < scenarios.len() { "," } else { "" },
        );
    }
    let mut utilisation_json = String::new();
    for (i, u) in sweep_utilisation.iter().enumerate() {
        if i > 0 {
            utilisation_json.push_str(", ");
        }
        let _ = write!(utilisation_json, "{u:.4}");
    }
    let _ = writeln!(
        json,
        "  ],\n  \"sweep\": {{\"points\": {}, \"workers\": {}, \"wall_ms_serial\": {:.3}, \
         \"wall_ms_threaded\": {:.3}, \"speedup\": {:.4}, \
         \"worker_utilisation\": [{}]}},",
        sweep_points.len(),
        sweep_workers,
        sweep_serial_ms,
        sweep_threaded_ms,
        sweep_serial_ms / sweep_threaded_ms,
        utilisation_json,
    );
    let _ = writeln!(
        json,
        "  \"fleet\": {{\"windows\": {}, \"sites\": {}, \"cells\": {}, \"wall_ms\": {:.3}, \
         \"static_mg_per_request\": {:.6}, \"carbon_aware_mg_per_request\": {:.6}}},",
        fleet.baseline().windows(),
        fleet.baseline().site_names().len(),
        fleet_cells,
        fleet_wall_ms,
        fleet.baseline().grams_per_request().unwrap_or(0.0) * 1_000.0,
        fleet.carbon_aware().grams_per_request().unwrap_or(0.0) * 1_000.0,
    );
    let _ = writeln!(
        json,
        "  \"lifecycle\": {{\"years\": {}, \"cells\": {}, \"wall_ms\": {:.3}, \
         \"cloudlet_mg_per_request\": {:.6}, \"datacenter_mg_per_request\": {:.6}, \
         \"crossover_day\": {}}},",
        lifecycle.cloudlet().years(),
        lifecycle_cells,
        lifecycle_wall_ms,
        lifecycle.cloudlet().grams_per_request().unwrap_or(0.0) * 1_000.0,
        lifecycle.datacenter().grams_per_request().unwrap_or(0.0) * 1_000.0,
        lifecycle
            .crossover_day()
            .map_or("null".to_owned(), |d| d.to_string()),
    );
    let _ = writeln!(
        json,
        "  \"planner\": {{\"wall_ms\": {:.3}, \"candidates_enumerated\": {}, \
         \"screened_out\": {}, \"candidates_evaluated\": {}, \"cache_hits\": {}, \
         \"cache_misses\": {}, \"cache_hit_rate\": {:.6}, \"frontier_size\": {}, \
         \"best_mg_per_request\": {:.6}, \"baseline_mg_per_request\": {:.6}, \
         \"improvement_percent\": {:.4}}},",
        planner_wall_ms,
        planner_outcome.candidates_enumerated(),
        planner_outcome.screened_out(),
        planner_outcome.fresh_evaluations(),
        planner_outcome.cache_hits(),
        planner_outcome.cache_misses(),
        planner_outcome.cache_hit_rate(),
        planner_outcome.frontier().len(),
        planner
            .best()
            .and_then(|b| b.evaluation().grams_per_request())
            .unwrap_or(0.0)
            * 1_000.0,
        planner
            .baseline()
            .evaluation()
            .grams_per_request()
            .unwrap_or(0.0)
            * 1_000.0,
        planner.improvement_percent(),
    );

    profiler.stop();
    let _ = json.write_str("  \"profile\": [\n");
    let stages = profiler.stages();
    for (i, (path, ms)) in stages.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"stage\": \"{path}\", \"wall_ms\": {ms:.3}}}{}",
            if i + 1 < stages.len() { "," } else { "" },
        );
    }
    let _ = json.write_str("  ]\n}\n");

    std::fs::write(&output, &json).expect("report file is writable");
    std::fs::write(&folded_output, profiler.folded()).expect("folded file is writable");

    println!("Engine perf report (written to {output}):\n");
    println!(
        "  {:16} {:20} {:>7} {:>9} {:>9} {:>12} {:>10}",
        "app", "request type", "qps", "offered", "wall ms", "events/sec", "median ms"
    );
    for s in &scenarios {
        println!(
            "  {:16} {:20} {:>7} {:>9} {:>9.2} {:>12.0} {:>10.2}",
            s.app,
            s.request_type.unwrap_or("(mixed)"),
            s.qps,
            s.offered,
            s.wall_ms,
            s.events_per_sec,
            s.median_ms,
        );
    }
    println!(
        "\n  sweep ({} points, {} workers): serial {:.1} ms, threaded {:.1} ms ({:.2}x), \
         worker event shares [{}]",
        sweep_points.len(),
        sweep_workers,
        sweep_serial_ms,
        sweep_threaded_ms,
        sweep_serial_ms / sweep_threaded_ms,
        utilisation_json,
    );
    println!(
        "  fleet study ({} cells across both policies): {:.1} ms, \
         static {:.4} vs carbon-aware {:.4} mgCO2e/request",
        fleet_cells,
        fleet_wall_ms,
        fleet.baseline().grams_per_request().unwrap_or(0.0) * 1_000.0,
        fleet.carbon_aware().grams_per_request().unwrap_or(0.0) * 1_000.0,
    );
    println!(
        "  lifecycle study ({} year-site cells, both deployments): {:.1} ms, \
         cloudlets {:.4} vs datacenter {:.4} mgCO2e/request",
        lifecycle_cells,
        lifecycle_wall_ms,
        lifecycle.cloudlet().grams_per_request().unwrap_or(0.0) * 1_000.0,
        lifecycle.datacenter().grams_per_request().unwrap_or(0.0) * 1_000.0,
    );
    println!(
        "  planner search ({} candidates, {} simulations, {:.0}% cache hits): {:.1} ms, \
         argmin {:.4} vs hand-built {:.4} mgCO2e/request",
        planner_outcome.candidates_enumerated(),
        planner_outcome.fresh_evaluations(),
        planner_outcome.cache_hit_rate() * 100.0,
        planner_wall_ms,
        planner
            .best()
            .and_then(|b| b.evaluation().grams_per_request())
            .unwrap_or(0.0)
            * 1_000.0,
        planner
            .baseline()
            .evaluation()
            .grams_per_request()
            .unwrap_or(0.0)
            * 1_000.0,
    );
}
