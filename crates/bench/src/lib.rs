//! Shared helpers for the experiment binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see `README.md` for the index) and prints it as plain text plus CSV.
//! The sweep-backed figures (7 and 8) honour the `JUNKYARD_FULL=1`
//! environment variable to run at the paper's full scale instead of the
//! default quick configuration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use junkyard_core::report::{Chart, Table};

/// `true` when the user asked for full-scale (paper-sized) experiment runs.
#[must_use]
pub fn full_scale() -> bool {
    std::env::var("JUNKYARD_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Prints a table as text and CSV.
pub fn emit_table(table: &Table) {
    println!("{table}");
    println!("--- CSV ---\n{}", table.to_csv());
}

/// Prints a chart as text and CSV.
pub fn emit_chart(chart: &Chart) {
    println!("{chart}");
    println!("--- CSV ---\n{}", chart.to_csv());
}

#[cfg(test)]
mod tests {
    #[test]
    fn full_scale_defaults_to_false() {
        // The variable is not set in the test environment.
        if std::env::var("JUNKYARD_FULL").is_err() {
            assert!(!super::full_scale());
        }
    }
}
