//! Cluster network topologies (Section 4.2).
//!
//! Two deployment cases: an existing-infrastructure case where devices plug
//! into a wired switch, and an in-situ edge case where phones form a tree —
//! groups of five devices, one of which hotspots the others over its WiFi
//! and reaches the outside world over LTE. WiFi is the bandwidth bottleneck:
//! with 150 Mbit/s radios the tree gives each device roughly 18.5 Mbit/s of
//! uplink and downlink.

use std::fmt;

use serde::{Deserialize, Serialize};

use junkyard_carbon::units::DataRate;

/// How the cluster's devices are networked.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum NetworkTopology {
    /// Devices connect to pre-existing wired switches with the given
    /// per-device uplink capacity.
    WiredSwitch {
        /// Per-device link rate to the switch.
        uplink: DataRate,
    },
    /// Phones organised into hotspot groups: one device per group bridges
    /// the rest to the cellular network over its WiFi radio.
    WifiTree {
        /// Devices per group, including the hotspot (the paper uses 5).
        group_size: u32,
        /// WiFi link rate of the hotspot device.
        wifi_rate: DataRate,
        /// LTE uplink rate of the hotspot device.
        lte_rate: DataRate,
    },
}

impl NetworkTopology {
    /// The paper's wired-datacenter assumption: 1 Gbps per device.
    #[must_use]
    pub fn wired_gigabit() -> Self {
        NetworkTopology::WiredSwitch {
            uplink: DataRate::from_gigabits_per_sec(1.0),
        }
    }

    /// The paper's in-situ tree: groups of five Nexus-class phones with
    /// 150 Mbit/s WiFi and an LTE uplink.
    #[must_use]
    pub fn paper_wifi_tree() -> Self {
        NetworkTopology::WifiTree {
            group_size: 5,
            wifi_rate: DataRate::from_megabits_per_sec(150.0),
            lte_rate: DataRate::from_megabits_per_sec(50.0),
        }
    }

    /// Usable uplink-plus-downlink capacity available to each device.
    ///
    /// For the WiFi tree the hotspot's WiFi channel is shared by the other
    /// `group_size - 1` devices in both directions, so each device sees
    /// `wifi / (2 * (group_size - 1))` — about 18.5 Mbit/s for the paper's
    /// parameters.
    #[must_use]
    pub fn per_device_capacity(self) -> DataRate {
        match self {
            NetworkTopology::WiredSwitch { uplink } => uplink,
            NetworkTopology::WifiTree {
                group_size,
                wifi_rate,
                ..
            } => {
                let sharers = group_size.saturating_sub(1).max(1);
                wifi_rate / (2.0 * f64::from(sharers))
            }
        }
    }

    /// Whether the topology requires cellular connectivity on some devices.
    #[must_use]
    pub fn needs_cellular(self) -> bool {
        matches!(self, NetworkTopology::WifiTree { .. })
    }

    /// Number of hotspot/gateway devices required for `device_count`
    /// devices (zero for wired clusters).
    #[must_use]
    pub fn gateways_needed(self, device_count: u32) -> u32 {
        match self {
            NetworkTopology::WiredSwitch { .. } => 0,
            NetworkTopology::WifiTree { group_size, .. } => {
                device_count.div_ceil(group_size.max(1))
            }
        }
    }

    /// External (wide-area) capacity of a cluster of `device_count` devices:
    /// the sum of gateway LTE uplinks for the tree, or the wired uplink sum.
    #[must_use]
    pub fn external_capacity(self, device_count: u32) -> DataRate {
        match self {
            NetworkTopology::WiredSwitch { uplink } => uplink * f64::from(device_count),
            NetworkTopology::WifiTree { lte_rate, .. } => {
                lte_rate * f64::from(self.gateways_needed(device_count))
            }
        }
    }
}

impl fmt::Display for NetworkTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkTopology::WiredSwitch { uplink } => write!(f, "wired switch ({uplink}/device)"),
            NetworkTopology::WifiTree { group_size, .. } => {
                write!(f, "WiFi tree (groups of {group_size})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tree_gives_about_18_5_mbit_per_device() {
        let capacity = NetworkTopology::paper_wifi_tree().per_device_capacity();
        assert!(
            (capacity.megabits_per_sec() - 18.75).abs() < 0.5,
            "got {capacity}"
        );
    }

    #[test]
    fn wired_capacity_is_the_uplink() {
        let t = NetworkTopology::wired_gigabit();
        assert!((t.per_device_capacity().gigabits_per_sec() - 1.0).abs() < 1e-9);
        assert!(!t.needs_cellular());
        assert_eq!(t.gateways_needed(100), 0);
    }

    #[test]
    fn tree_gateway_count() {
        let t = NetworkTopology::paper_wifi_tree();
        assert!(t.needs_cellular());
        assert_eq!(t.gateways_needed(10), 2);
        assert_eq!(t.gateways_needed(54), 11);
        assert_eq!(t.gateways_needed(256), 52);
    }

    #[test]
    fn external_capacity_scales_with_gateways() {
        let t = NetworkTopology::paper_wifi_tree();
        let ten = t.external_capacity(10);
        let fifty = t.external_capacity(50);
        assert!(fifty.megabits_per_sec() > ten.megabits_per_sec());
        assert!((ten.megabits_per_sec() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn display_names() {
        assert!(NetworkTopology::wired_gigabit()
            .to_string()
            .contains("wired"));
        assert!(NetworkTopology::paper_wifi_tree()
            .to_string()
            .contains("WiFi tree"));
    }
}
