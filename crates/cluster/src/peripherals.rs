//! Peripherals added to a cloudlet: smart plugs, server fans, switches.
//!
//! Reused phones are "free" in embodied carbon, but the hardware added to
//! operate them as a cluster is not (Section 5.2): smart plugs enable smart
//! charging, COTS server fans provide cooling, and wired clusters need
//! switches. Each peripheral adds embodied carbon (to `C_M`) and electrical
//! power (to `C_C`).

use std::fmt;

use serde::{Deserialize, Serialize};

use junkyard_carbon::units::{GramsCo2e, Watts};

/// One kind of peripheral and how many of it the cloudlet uses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Peripheral {
    label: String,
    embodied_each: GramsCo2e,
    power_each: Watts,
    quantity: u32,
}

impl Peripheral {
    /// Creates a peripheral line item.
    #[must_use]
    pub fn new(
        label: impl Into<String>,
        embodied_each: GramsCo2e,
        power_each: Watts,
        quantity: u32,
    ) -> Self {
        Self {
            label: label.into(),
            embodied_each,
            power_each,
            quantity,
        }
    }

    /// A smart plug enabling carbon-aware charging: ~3 kgCO2e embodied,
    /// ~0.5 W overhead (documented estimate; the paper adds one per device
    /// but does not publish per-plug figures).
    #[must_use]
    pub fn smart_plug(quantity: u32) -> Self {
        Self::new(
            "smart plug",
            GramsCo2e::from_kilograms(3.0),
            Watts::new(0.5),
            quantity,
        )
    }

    /// A COTS server fan rated for 500 W of heat: 9.3 kgCO2e embodied,
    /// 4 W draw (Section 4.1).
    #[must_use]
    pub fn server_fan(quantity: u32) -> Self {
        Self::new(
            "server fan",
            GramsCo2e::from_kilograms(9.3),
            Watts::new(4.0),
            quantity,
        )
    }

    /// A small Ethernet switch for wired clusters: ~25 kgCO2e, 10 W.
    #[must_use]
    pub fn ethernet_switch(quantity: u32) -> Self {
        Self::new(
            "ethernet switch",
            GramsCo2e::from_kilograms(25.0),
            Watts::new(10.0),
            quantity,
        )
    }

    /// Description of the peripheral.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Embodied carbon per unit.
    #[must_use]
    pub fn embodied_each(&self) -> GramsCo2e {
        self.embodied_each
    }

    /// Electrical power per unit.
    #[must_use]
    pub fn power_each(&self) -> Watts {
        self.power_each
    }

    /// How many units the cloudlet uses.
    #[must_use]
    pub fn quantity(&self) -> u32 {
        self.quantity
    }

    /// Total embodied carbon of this line item.
    #[must_use]
    pub fn total_embodied(&self) -> GramsCo2e {
        self.embodied_each * f64::from(self.quantity)
    }

    /// Total electrical power of this line item.
    #[must_use]
    pub fn total_power(&self) -> Watts {
        self.power_each * f64::from(self.quantity)
    }
}

impl fmt::Display for Peripheral {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} x{} ({:.1} kgCO2e, {:.1} W total)",
            self.label,
            self.quantity,
            self.total_embodied().kilograms(),
            self.total_power().value()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smart_plug_totals() {
        let plugs = Peripheral::smart_plug(54);
        assert!((plugs.total_embodied().kilograms() - 162.0).abs() < 1e-9);
        assert!((plugs.total_power().value() - 27.0).abs() < 1e-9);
        assert_eq!(plugs.quantity(), 54);
    }

    #[test]
    fn server_fan_matches_paper_numbers() {
        let fan = Peripheral::server_fan(2);
        assert!((fan.total_embodied().kilograms() - 18.6).abs() < 1e-9);
        assert!((fan.total_power().value() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn zero_quantity_is_free() {
        let none = Peripheral::ethernet_switch(0);
        assert_eq!(none.total_embodied(), GramsCo2e::ZERO);
        assert_eq!(none.total_power(), Watts::ZERO);
    }

    #[test]
    fn display_mentions_quantity() {
        assert!(Peripheral::smart_plug(3).to_string().contains("x3"));
    }
}
