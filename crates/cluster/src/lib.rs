//! Cluster-design substrate for the Junkyard Computing reproduction.
//!
//! Answers the paper's Section 4 question — "what does it take to make a
//! server out of smartphones?" — as data structures:
//!
//! * [`topology`] — wired and WiFi-tree network topologies and their
//!   per-device bandwidth.
//! * [`peripherals`] — smart plugs, server fans and switches with their
//!   embodied carbon and power.
//! * [`cloudlet`] — [`CloudletDesign`](cloudlet::CloudletDesign): a set of
//!   identical devices plus peripherals, with aggregate power, throughput,
//!   embodied bills and battery schedules.
//! * [`presets`] — the five Section 5.2 comparison cloudlets and the
//!   ten-phone Section 6 prototype.
//! * [`datacenter`] — 50 MW-scale provisioning and PUE (Section 5.3).
//!
//! # Example
//!
//! ```
//! use junkyard_cluster::presets;
//! use junkyard_devices::power::LoadProfile;
//!
//! let pixel = presets::pixel_cloudlet();
//! let power = pixel.average_power(&LoadProfile::light_medium());
//! println!("{pixel} draws {power:.0}");
//! assert_eq!(pixel.device_count(), 54);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cloudlet;
pub mod datacenter;
pub mod peripherals;
pub mod presets;
pub mod topology;

pub use cloudlet::CloudletDesign;
pub use datacenter::DatacenterDesign;
pub use peripherals::Peripheral;
pub use topology::NetworkTopology;
