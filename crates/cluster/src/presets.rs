//! The cloudlet configurations evaluated in Section 5.2 and the ten-phone
//! prototype of Section 6.

use junkyard_devices::catalog;

use crate::cloudlet::CloudletDesign;
use crate::peripherals::Peripheral;
use crate::topology::NetworkTopology;

/// Cloudlet 1: a single, newly manufactured PowerEdge R740 (the baseline).
#[must_use]
pub fn poweredge_baseline() -> CloudletDesign {
    CloudletDesign::new("PowerEdge R740", catalog::poweredge_r740(), 1)
        .newly_manufactured()
        .topology(NetworkTopology::wired_gigabit())
}

/// Cloudlet 2: 17 reused ThinkPad X1 Carbon Gen 3 laptops with smart plugs
/// (4 % smart-charging saving).
#[must_use]
pub fn thinkpad_cloudlet() -> CloudletDesign {
    CloudletDesign::new("ThinkPad x17", catalog::thinkpad_x1_carbon_g3(), 17)
        .with_peripheral(Peripheral::smart_plug(17))
        .smart_charging_savings(0.04)
        .topology(NetworkTopology::wired_gigabit())
}

/// Cloudlet 3: 20 reused ProLiant DL380 G6 servers.
#[must_use]
pub fn proliant_cloudlet() -> CloudletDesign {
    CloudletDesign::new("ProLiant x20", catalog::proliant_dl380_g6(), 20)
        .topology(NetworkTopology::wired_gigabit())
}

/// Cloudlet 4: 54 reused Pixel 3A phones, 20 % management nodes, 54 smart
/// plugs (7 % saving) and one 500 W-rated server fan.
#[must_use]
pub fn pixel_cloudlet() -> CloudletDesign {
    CloudletDesign::new("Pixel 3A x54", catalog::pixel_3a(), 54)
        .management_fraction(0.20)
        .with_peripheral(Peripheral::smart_plug(54))
        .with_peripheral(Peripheral::server_fan(1))
        .smart_charging_savings(0.07)
        .topology(NetworkTopology::paper_wifi_tree())
}

/// Cloudlet 5: 256 reused Nexus 4 phones, 20 % management nodes, 270 smart
/// plugs (7 % saving) and two 500 W-rated server fans.
#[must_use]
pub fn nexus4_cloudlet() -> CloudletDesign {
    CloudletDesign::new("Nexus 4 x256", catalog::nexus_4(), 256)
        .management_fraction(0.20)
        .with_peripheral(Peripheral::smart_plug(270))
        .with_peripheral(Peripheral::server_fan(2))
        .smart_charging_savings(0.07)
        .topology(NetworkTopology::paper_wifi_tree())
}

/// All five Section 5.2 comparison points, in the paper's order.
#[must_use]
pub fn section_5_2_cloudlets() -> Vec<CloudletDesign> {
    vec![
        poweredge_baseline(),
        thinkpad_cloudlet(),
        proliant_cloudlet(),
        pixel_cloudlet(),
        nexus4_cloudlet(),
    ]
}

/// The Section 6 proof-of-concept: ten reused Pixel 3A phones on local WiFi
/// with a single fan.
#[must_use]
pub fn ten_phone_prototype() -> CloudletDesign {
    CloudletDesign::new("Junkyard cloudlet (10x Pixel 3A)", catalog::pixel_3a(), 10)
        .with_peripheral(Peripheral::server_fan(1))
        .topology(NetworkTopology::paper_wifi_tree())
}

#[cfg(test)]
mod tests {
    use super::*;
    use junkyard_devices::power::LoadProfile;

    #[test]
    fn all_five_cloudlets_present_in_order() {
        let cloudlets = section_5_2_cloudlets();
        assert_eq!(cloudlets.len(), 5);
        let counts: Vec<u32> = cloudlets.iter().map(CloudletDesign::device_count).collect();
        assert_eq!(counts, vec![1, 17, 20, 54, 256]);
        assert!(!cloudlets[0].is_reused());
        assert!(cloudlets[1..].iter().all(CloudletDesign::is_reused));
    }

    #[test]
    fn nexus_cluster_burns_more_power_than_the_new_server() {
        // Section 5.2: the Nexus 4 cluster consumes ~456 W versus the
        // PowerEdge's ~309 W, yet is still more carbon-efficient early on.
        let profile = LoadProfile::light_medium();
        let nexus = nexus4_cloudlet().average_power(&profile);
        let server = poweredge_baseline().average_power(&profile);
        assert!(nexus.value() > server.value());
        assert!((server.value() - 308.7).abs() < 1.0);
        assert!(
            nexus.value() > 440.0 && nexus.value() < 620.0,
            "got {nexus}"
        );
    }

    #[test]
    fn pixel_cloudlet_matches_paper_structure() {
        let pixel = pixel_cloudlet();
        assert_eq!(pixel.device_count(), 54);
        assert_eq!(pixel.management_count(), 11);
        assert!((pixel.smart_charging_fraction() - 0.07).abs() < 1e-12);
        assert_eq!(pixel.peripherals().len(), 2);
    }

    #[test]
    fn prototype_has_ten_phones() {
        let p = ten_phone_prototype();
        assert_eq!(p.device_count(), 10);
        assert!(p.network().needs_cellular());
    }

    #[test]
    fn smart_charging_only_on_battery_backed_cloudlets() {
        assert_eq!(proliant_cloudlet().smart_charging_fraction(), 0.0);
        assert_eq!(poweredge_baseline().smart_charging_fraction(), 0.0);
        assert!(thinkpad_cloudlet().smart_charging_fraction() > 0.0);
    }
}
