//! Datacenter-scale provisioning and PUE (Section 5.3).
//!
//! The paper compares a 50 MW facility built from PowerEdge R740 servers
//! against one built from 54-phone Pixel 3A clusters: 170,000 units either
//! way, each occupying 2U of rack space, with PUEs of about 1.31 and 1.32
//! respectively.

use std::fmt;

use serde::{Deserialize, Serialize};

use junkyard_carbon::scale::{FacilityModel, Pue};
use junkyard_carbon::units::Watts;
use junkyard_devices::power::LoadProfile;

use crate::cloudlet::CloudletDesign;

/// A warehouse-scale deployment of identical units.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatacenterDesign {
    name: String,
    unit_power: Watts,
    unit_count: u64,
    rack_units_per_unit: f64,
    facility: FacilityModel,
}

impl DatacenterDesign {
    /// Creates a datacenter of `unit_count` units each drawing `unit_power`
    /// and occupying `rack_units_per_unit` of rack space.
    ///
    /// # Panics
    ///
    /// Panics if the unit count is zero or the unit power is not positive.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        unit_power: Watts,
        unit_count: u64,
        rack_units_per_unit: f64,
    ) -> Self {
        assert!(unit_count > 0, "a datacenter needs at least one unit");
        assert!(unit_power.value() > 0.0, "unit power must be positive");
        Self {
            name: name.into(),
            unit_power,
            unit_count,
            rack_units_per_unit,
            facility: FacilityModel::air_cooled_default(),
        }
    }

    /// Builds a datacenter by replicating a cloudlet design `unit_count`
    /// times under the given duty cycle.
    #[must_use]
    pub fn from_cloudlet(
        cloudlet: &CloudletDesign,
        profile: &LoadProfile,
        unit_count: u64,
    ) -> Self {
        Self::new(
            format!("{} datacenter", cloudlet.name()),
            cloudlet.average_power(profile),
            unit_count,
            2.0,
        )
    }

    /// The paper's 170,000-unit PowerEdge design (308 W per unit, 2U each).
    #[must_use]
    pub fn paper_server_datacenter() -> Self {
        Self::new("PowerEdge 50 MW", Watts::new(308.0), 170_000, 2.0)
    }

    /// The paper's 170,000-unit Pixel-cluster design (84 W per 54-phone
    /// cluster, 2U each — leaving 75 % of the space empty).
    #[must_use]
    pub fn paper_phone_datacenter() -> Self {
        Self::new("Pixel 3A cluster 50 MW", Watts::new(84.0), 170_000, 2.0)
    }

    /// Overrides the facility overhead model.
    #[must_use]
    pub fn facility(mut self, facility: FacilityModel) -> Self {
        self.facility = facility;
        self
    }

    /// Design name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of deployed units.
    #[must_use]
    pub fn unit_count(&self) -> u64 {
        self.unit_count
    }

    /// Average power of one unit.
    #[must_use]
    pub fn unit_power(&self) -> Watts {
        self.unit_power
    }

    /// Total IT power of the facility.
    #[must_use]
    pub fn it_power(&self) -> Watts {
        self.unit_power * self.unit_count as f64
    }

    /// The facility PUE (Eq. 14).
    #[must_use]
    pub fn pue(&self) -> Pue {
        self.facility
            .pue_for(self.unit_count, self.unit_power, self.rack_units_per_unit)
    }
}

impl fmt::Display for DatacenterDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} units, {:.1} MW IT, {}",
            self.name,
            self.unit_count,
            self.it_power().value() / 1e6,
            self.pue()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn paper_pue_values() {
        let server = DatacenterDesign::paper_server_datacenter().pue().value();
        let phones = DatacenterDesign::paper_phone_datacenter().pue().value();
        // Paper: 1.31 for the server design, 1.32 for the phone design.
        assert!((server - 1.31).abs() < 0.03, "server PUE {server}");
        assert!((phones - 1.32).abs() < 0.03, "phone PUE {phones}");
        assert!(phones > server);
    }

    #[test]
    fn it_power_is_units_times_unit_power() {
        let dc = DatacenterDesign::paper_server_datacenter();
        assert!((dc.it_power().value() / 1e6 - 52.36).abs() < 0.01);
        assert_eq!(dc.unit_count(), 170_000);
    }

    #[test]
    fn from_cloudlet_uses_cluster_power() {
        let dc = DatacenterDesign::from_cloudlet(
            &presets::pixel_cloudlet(),
            &LoadProfile::light_medium(),
            1_000,
        );
        assert!(dc.unit_power().value() > 80.0);
        assert!(dc.name().contains("Pixel"));
        assert!(dc.pue().value() > 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn empty_datacenter_panics() {
        let _ = DatacenterDesign::new("x", Watts::new(100.0), 0, 2.0);
    }

    #[test]
    fn display_mentions_pue() {
        assert!(DatacenterDesign::paper_server_datacenter()
            .to_string()
            .contains("PUE"));
    }
}
