//! Cloudlet designs: a homogeneous set of devices plus the peripherals and
//! networking needed to operate them as one server-equivalent unit.

use std::fmt;

use serde::{Deserialize, Serialize};

use junkyard_carbon::embodied::EmbodiedCarbon;
use junkyard_carbon::ops::Throughput;
use junkyard_carbon::units::{GramsCo2e, TimeSpan, Watts};
use junkyard_devices::benchmark::Benchmark;
use junkyard_devices::device::DeviceSpec;
use junkyard_devices::power::LoadProfile;

use crate::peripherals::Peripheral;
use crate::topology::NetworkTopology;

/// A cloudlet: `device_count` identical devices, their peripherals and their
/// network, operated together.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CloudletDesign {
    name: String,
    device: DeviceSpec,
    device_count: u32,
    management_fraction: f64,
    reused: bool,
    peripherals: Vec<Peripheral>,
    topology: NetworkTopology,
    smart_charging_savings: f64,
}

impl CloudletDesign {
    /// Starts a design from a device and a count.
    ///
    /// # Panics
    ///
    /// Panics if `device_count` is zero.
    #[must_use]
    pub fn new(name: impl Into<String>, device: DeviceSpec, device_count: u32) -> Self {
        assert!(device_count > 0, "a cloudlet needs at least one device");
        Self {
            name: name.into(),
            device,
            device_count,
            management_fraction: 0.0,
            reused: true,
            peripherals: Vec::new(),
            topology: NetworkTopology::wired_gigabit(),
            smart_charging_savings: 0.0,
        }
    }

    /// Marks the devices as newly manufactured (their embodied carbon is
    /// charged to the cloudlet) rather than reused.
    #[must_use]
    pub fn newly_manufactured(mut self) -> Self {
        self.reused = false;
        self
    }

    /// Designates a fraction of the devices as networking/management nodes
    /// (the paper uses 20 % for its phone cloudlets).
    ///
    /// # Panics
    ///
    /// Panics if the fraction is outside `[0, 1)`.
    #[must_use]
    pub fn management_fraction(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&fraction),
            "management fraction must be in [0, 1)"
        );
        self.management_fraction = fraction;
        self
    }

    /// Adds a peripheral line item.
    #[must_use]
    pub fn with_peripheral(mut self, peripheral: Peripheral) -> Self {
        self.peripherals.push(peripheral);
        self
    }

    /// Sets the network topology.
    #[must_use]
    pub fn topology(mut self, topology: NetworkTopology) -> Self {
        self.topology = topology;
        self
    }

    /// Records the operational carbon saving achieved by smart charging
    /// (for example 0.07 for the Pixel cloudlet, 0.04 for the ThinkPads).
    ///
    /// # Panics
    ///
    /// Panics if the fraction is outside `[0, 1)`.
    #[must_use]
    pub fn smart_charging_savings(mut self, fraction: f64) -> Self {
        assert!((0.0..1.0).contains(&fraction), "savings must be in [0, 1)");
        self.smart_charging_savings = fraction;
        self
    }

    /// A copy of this design with smart charging (and its plugs) removed —
    /// the paper's 100 %-solar variant, where time-shifting buys nothing.
    #[must_use]
    pub fn without_smart_charging(&self) -> Self {
        let mut copy = self.clone();
        copy.smart_charging_savings = 0.0;
        copy.peripherals.retain(|p| p.label() != "smart plug");
        copy
    }

    /// Design name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The device the cloudlet is built from.
    #[must_use]
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Total number of devices.
    #[must_use]
    pub fn device_count(&self) -> u32 {
        self.device_count
    }

    /// Number of devices designated as networking/management nodes.
    #[must_use]
    pub fn management_count(&self) -> u32 {
        (f64::from(self.device_count) * self.management_fraction).round() as u32
    }

    /// Whether the devices are reused (embodied carbon already paid).
    #[must_use]
    pub fn is_reused(&self) -> bool {
        self.reused
    }

    /// The peripherals added to the cloudlet.
    #[must_use]
    pub fn peripherals(&self) -> &[Peripheral] {
        &self.peripherals
    }

    /// The cloudlet's network topology.
    #[must_use]
    pub fn network(&self) -> NetworkTopology {
        self.topology
    }

    /// The recorded smart-charging saving fraction.
    #[must_use]
    pub fn smart_charging_fraction(&self) -> f64 {
        self.smart_charging_savings
    }

    /// The operational-carbon scale factor implied by smart charging
    /// (1.0 when smart charging is off).
    #[must_use]
    pub fn operational_scale(&self) -> f64 {
        1.0 - self.smart_charging_savings
    }

    /// Average electrical power of the whole cloudlet (devices plus
    /// peripherals) under a duty cycle.
    #[must_use]
    pub fn average_power(&self, profile: &LoadProfile) -> Watts {
        let devices = self.device.average_power(profile) * f64::from(self.device_count);
        let peripherals: Watts = self.peripherals.iter().map(Peripheral::total_power).sum();
        devices + peripherals
    }

    /// Aggregate duty-cycle-averaged throughput of the cloudlet on a
    /// benchmark, if the device has a score for it.
    #[must_use]
    pub fn aggregate_throughput(
        &self,
        benchmark: Benchmark,
        profile: &LoadProfile,
    ) -> Option<Throughput> {
        self.device
            .average_throughput(benchmark, profile)
            .map(|t| t.scaled(f64::from(self.device_count)))
    }

    /// The embodied-carbon bill of the cloudlet, excluding battery
    /// replacements (which depend on the service lifetime and are handled by
    /// the CCI calculator's battery schedule).
    #[must_use]
    pub fn embodied_bill(&self) -> EmbodiedCarbon {
        let mut bill = EmbodiedCarbon::new();
        if !self.reused {
            bill.push_item(
                format!("{} (new)", self.device.name()),
                self.device.embodied(),
                f64::from(self.device_count),
            );
        }
        for peripheral in &self.peripherals {
            bill.push_item(
                peripheral.label(),
                peripheral.embodied_each(),
                f64::from(peripheral.quantity()),
            );
        }
        bill
    }

    /// Per-cloudlet battery replacement schedule, if the devices have
    /// batteries: the embodied carbon of replacing every device's pack once,
    /// and how long a pack lasts under the given duty cycle.
    #[must_use]
    pub fn battery_schedule(&self, profile: &LoadProfile) -> Option<(GramsCo2e, TimeSpan)> {
        let battery = self.device.battery()?;
        let power = self.device.average_power(profile);
        if power.value() <= 0.0 {
            return None;
        }
        let per_round = battery.embodied() * f64::from(self.device_count);
        Some((per_round, battery.projected_lifetime(power)))
    }

    /// Up-front hardware purchase cost in USD, if the device has a known
    /// second-hand price.
    #[must_use]
    pub fn purchase_cost_usd(&self) -> Option<f64> {
        self.device
            .purchase_cost_usd()
            .map(|per_device| per_device * f64::from(self.device_count))
    }
}

impl fmt::Display for CloudletDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} x {}",
            self.name,
            self.device_count,
            self.device.name()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use junkyard_devices::catalog;

    fn pixel_cloudlet() -> CloudletDesign {
        CloudletDesign::new("Pixel 3A x54", catalog::pixel_3a(), 54)
            .management_fraction(0.20)
            .with_peripheral(Peripheral::smart_plug(54))
            .with_peripheral(Peripheral::server_fan(1))
            .topology(NetworkTopology::paper_wifi_tree())
            .smart_charging_savings(0.07)
    }

    #[test]
    fn pixel_cloudlet_draws_about_84_watts_plus_peripherals() {
        let cloudlet = pixel_cloudlet();
        let power = cloudlet.average_power(&LoadProfile::light_medium());
        // 54 * 1.535 ≈ 83 W of phones, plus 27 W of plugs and 4 W of fan.
        assert!(
            power.value() > 105.0 && power.value() < 125.0,
            "got {power}"
        );
    }

    #[test]
    fn embodied_bill_counts_only_added_hardware_for_reuse() {
        let bill = pixel_cloudlet().embodied_bill();
        // 54 plugs at 3 kg + 1 fan at 9.3 kg; the phones themselves are free.
        assert!((bill.total().kilograms() - (162.0 + 9.3)).abs() < 1e-6);
    }

    #[test]
    fn new_server_pays_its_embodied_carbon() {
        let server = CloudletDesign::new("PowerEdge R740", catalog::poweredge_r740(), 1)
            .newly_manufactured();
        assert!((server.embodied_bill().total().kilograms() - 3330.0).abs() < 1e-6);
        assert!(!server.is_reused());
    }

    #[test]
    fn aggregate_throughput_scales_with_count() {
        let cloudlet = pixel_cloudlet();
        let profile = LoadProfile::light_medium();
        let single = catalog::pixel_3a()
            .average_throughput(Benchmark::Sgemm, &profile)
            .unwrap();
        let total = cloudlet
            .aggregate_throughput(Benchmark::Sgemm, &profile)
            .unwrap();
        assert!((total.rate() / single.rate() - 54.0).abs() < 1e-9);
    }

    #[test]
    fn battery_schedule_matches_pixel_projection() {
        let (carbon, lifetime) = pixel_cloudlet()
            .battery_schedule(&LoadProfile::light_medium())
            .unwrap();
        assert!((carbon.kilograms() - 108.0).abs() < 1e-9);
        assert!(lifetime.years() > 2.0 && lifetime.years() < 2.7);
        // Servers have no batteries.
        let server = CloudletDesign::new("server", catalog::poweredge_r740(), 1);
        assert!(server
            .battery_schedule(&LoadProfile::light_medium())
            .is_none());
    }

    #[test]
    fn without_smart_charging_strips_plugs() {
        let solar = pixel_cloudlet().without_smart_charging();
        assert_eq!(solar.smart_charging_fraction(), 0.0);
        assert!((solar.operational_scale() - 1.0).abs() < 1e-12);
        assert!(solar
            .peripherals()
            .iter()
            .all(|p| p.label() != "smart plug"));
        // The fan stays.
        assert!(solar
            .peripherals()
            .iter()
            .any(|p| p.label() == "server fan"));
    }

    #[test]
    fn management_count_is_a_fifth() {
        assert_eq!(pixel_cloudlet().management_count(), 11);
    }

    #[test]
    fn purchase_cost_scales() {
        assert!((pixel_cloudlet().purchase_cost_usd().unwrap() - 54.0 * 65.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_devices_panics() {
        let _ = CloudletDesign::new("empty", catalog::pixel_3a(), 0);
    }
}
