//! Pins every numeric field of the workspace's conserved-accounting
//! structs — the structs doc-marked `lint: conserved` that
//! `junkyard_lint`'s conservation audit checks against this directory.
//!
//! Each field is bound to a local of the same name and asserted against
//! the conservation identity it participates in, so a field can neither
//! silently disappear from the accounting nor drift out of its identity
//! without a test noticing. If a numeric field is added to `RunMetrics`,
//! `FleetResult` or `LifecycleResult` and not pinned here (or in another
//! test under `tests/`), `cargo run -p junkyard_lint` fails.

use junkyard::carbon::units::{CarbonIntensity, GramsCo2e, TimeSpan, Watts};
use junkyard::devices::battery::BatterySpec;
use junkyard::fleet::faults::{DegradationLadder, FaultConfig, ResiliencePolicy, RetryPolicy};
use junkyard::fleet::lifecycle::{
    CohortDevice, LifecycleConfig, LifecycleSim, LifecycleSite, DAYS_PER_YEAR,
};
use junkyard::fleet::routing::RoutingPolicy;
use junkyard::fleet::schedule::DiurnalSchedule;
use junkyard::fleet::sim::{FleetConfig, FleetSim};
use junkyard::fleet::site::{FleetSite, GridRegion};
use junkyard::grid::synth::CaisoSynthesizer;
use junkyard::grid::trace::IntensityTrace;
use junkyard::microsim::app::hotel_reservation;
use junkyard::microsim::network::NetworkModel;
use junkyard::microsim::node::NodeSpec;
use junkyard::microsim::placement::Placement;
use junkyard::microsim::sim::{QueueDiscipline, ServerModel, Simulation, Workload};

fn tiny_sim() -> Simulation {
    let app = hotel_reservation();
    let nodes = vec![NodeSpec::pixel_3a(0), NodeSpec::pixel_3a(1)];
    let placement = Placement::swarm_spread(&app, &nodes, 11).unwrap();
    Simulation::new(app, nodes, placement, NetworkModel::phone_wifi()).unwrap()
}

fn phone_slot(capacity: f64) -> CohortDevice {
    CohortDevice::new(
        "Pixel 3A",
        Watts::new(1.7),
        BatterySpec::pixel_3a(),
        GramsCo2e::from_kilograms(5.5),
        capacity,
    )
    .power(Watts::new(0.8), Watts::new(1.7))
}

/// `RunMetrics`: `duration_s`, `offered` and `events` describe one run's
/// extent; offered demand lands either in a completion or a drop.
#[test]
fn run_metrics_extent_and_offered_conservation() {
    let sim = tiny_sim();
    let workload = Workload::steady(300.0, 2.0, None, 77);
    let metrics = sim.run(&workload).unwrap();

    let duration_s = metrics.duration_s();
    assert_eq!(duration_s, 2.0, "run covers the workload's duration");

    let offered = metrics.offered();
    assert!(offered > 0);
    assert_eq!(
        offered,
        metrics.completions().len() + metrics.dropped(),
        "every offered request completes or drops"
    );

    let events = metrics.events_processed();
    assert!(events as usize >= offered, "each request takes >= 1 event");
}

/// `FleetResult`: the `windows` grid dimension and the five conserved
/// totals. With bounded queues, offered demand decomposes exactly into
/// served + router-declined + queue-dropped, and carbon into
/// operational + embodied.
#[test]
fn fleet_result_conserves_offered_demand_and_carbon() {
    let model = ServerModel::new()
        .with_discipline(QueueDiscipline::CentralizedFcfs)
        .with_queue_size(Some(8));
    let trace = IntensityTrace::constant(
        CarbonIntensity::from_grams_per_kwh(400.0),
        TimeSpan::from_hours(1.0),
        TimeSpan::from_days(1.0),
    );
    let sim = tiny_sim().with_server_model(model);
    let site = FleetSite::new("a", &sim, GridRegion::new("a", trace), 500.0)
        .power(Watts::new(3.0), Watts::new(12.0))
        .embodied(GramsCo2e::from_kilograms(5.0), TimeSpan::from_years(3.0));
    let schedule = DiurnalSchedule::office_day(1_200.0);
    let offered: f64 = schedule
        .windows(4)
        .iter()
        .map(|w| w.mean_qps() * w.duration().seconds())
        .sum();
    let fleet = FleetSim::new(
        vec![site],
        schedule,
        RoutingPolicy::Static,
        FleetConfig::new()
            .windows_per_day(4)
            .sim_slice_s(1.0)
            .warmup_s(0.0)
            .seed(9),
    );
    let result = fleet.run().unwrap();

    let windows = result.windows();
    assert_eq!(windows, 4);
    assert_eq!(result.cells().len(), windows);

    let total_requests = result.total_requests();
    let declined_requests = result.router_declined_requests();
    let dropped_requests = result.queue_dropped_requests();
    assert!(
        declined_requests > 0.0,
        "demand exceeds the site's capacity"
    );
    assert!(
        (total_requests + declined_requests + dropped_requests - offered).abs() <= 1e-9 * offered,
        "served + declined + dropped == offered"
    );
    assert!(
        (result.shed_requests() - declined_requests - dropped_requests).abs()
            <= 1e-9 * result.shed_requests().max(1.0)
    );

    let total_operational = result.total_operational();
    let total_embodied = result.total_embodied();
    assert!(total_operational.grams() > 0.0);
    assert!(total_embodied.grams() > 0.0);
    assert!(
        ((total_operational + total_embodied) - result.total_carbon())
            .grams()
            .abs()
            <= 1e-9 * result.total_carbon().grams()
    );
}

/// `LifecycleResult`: the `years` grid dimension, the `horizon_seconds`
/// goodput denominator and every conserved request/carbon bucket,
/// exercised on a faulty run with the full resilience ladder so the
/// retry/hedge/reroute/brownout/shed counters are all live.
#[test]
fn lifecycle_result_conserved_buckets_pin_the_identity() {
    let trace = CaisoSynthesizer::new(5, 2)
        .step(TimeSpan::from_hours(1.0))
        .intensity_trace();
    let cohort = LifecycleSite::cohort(
        "cloudlet",
        &tiny_sim(),
        GridRegion::new("caiso", trace),
        vec![phone_slot(400.0), phone_slot(400.0)],
        GramsCo2e::from_kilograms(15.0),
    )
    .overhead_power(Watts::new(2.0))
    .failures(300.0, 4)
    .unwrap();
    let flat = IntensityTrace::constant(
        CarbonIntensity::from_grams_per_kwh(420.0),
        TimeSpan::from_hours(1.0),
        TimeSpan::from_days(1.0),
    );
    let leased = LifecycleSite::leased(
        "datacenter",
        &tiny_sim(),
        GridRegion::new("gas", flat),
        400.0,
    )
    .power(Watts::new(50.0), Watts::new(40.0))
    .embodied(GramsCo2e::from_kilograms(500.0), TimeSpan::from_years(4.0));

    let horizon_days = 20usize;
    let result = LifecycleSim::new(
        vec![cohort, leased],
        DiurnalSchedule::office_day(600.0),
        RoutingPolicy::carbon_aware(),
        LifecycleConfig::new(1)
            .horizon_days(horizon_days)
            .windows_per_day(2)
            .sim_slice_s(1.0)
            .warmup_s(0.0)
            .seed(5),
    )
    .with_faults(
        FaultConfig::disabled()
            .grid_outages(4.0, 2)
            .firmware_batches(5.0, 0.6, 3)
            .thermal_shutdowns(5.0, 1),
    )
    .with_resilience(
        ResiliencePolicy::new()
            .detection_lag_windows(1)
            .retry(RetryPolicy::new(2).hedge_to_fallback())
            .degradation(
                DegradationLadder::new()
                    .shed_low_priority(0.3)
                    .brownout(1.2),
            )
            .fallback_site(1),
    )
    .run()
    .unwrap();

    let years = result.years();
    assert_eq!(years, 1);
    assert_eq!(result.cells().len(), years * 2);
    assert!(horizon_days <= DAYS_PER_YEAR);

    // The conserved buckets: everything offered lands in exactly one.
    let total_requests = result.total_requests();
    let declined_requests = result.router_declined_requests();
    let dropped_requests = result.queue_dropped_requests();
    let low_priority_shed_requests = result.low_priority_shed_requests();
    let failed_requests = result.failed_requests();
    let offered = total_requests
        + declined_requests
        + dropped_requests
        + low_priority_shed_requests
        + failed_requests;
    assert!(
        (offered - result.offered_requests()).abs() <= 1e-9 * offered.max(1.0),
        "offered_requests() reconstructs the bucket sum"
    );
    for bucket in [
        total_requests,
        declined_requests,
        dropped_requests,
        low_priority_shed_requests,
        failed_requests,
    ] {
        assert!(bucket >= 0.0, "no conserved bucket goes negative");
    }

    // Resilience bookkeeping: recovered/redirected traffic is bounded by
    // what was at risk, and retry carbon only accrues when retries ran.
    let retried_ok_requests = result.retried_ok_requests();
    let hedged_requests = result.hedged_requests();
    let rerouted_requests = result.rerouted_requests();
    let brownout_requests = result.brownout_requests();
    let total_retry_carbon = result.total_retry_carbon();
    assert!(retried_ok_requests >= 0.0 && retried_ok_requests <= total_requests);
    assert!(hedged_requests >= 0.0 && hedged_requests <= total_requests);
    assert!(rerouted_requests >= 0.0 && rerouted_requests <= total_requests);
    assert!(brownout_requests >= 0.0 && brownout_requests <= total_requests);
    assert!(total_retry_carbon.grams() >= 0.0);
    if retried_ok_requests + hedged_requests == 0.0 {
        assert_eq!(total_retry_carbon.grams(), 0.0);
    }

    // Carbon totals and the goodput denominator: lifetime carbon is
    // operational + embodied + the retries' extra operational share.
    let total_operational = result.total_operational();
    let total_embodied = result.total_embodied();
    assert!(total_operational.grams() > 0.0);
    assert!(total_embodied.grams() > 0.0);
    assert!(
        ((total_operational + total_embodied + total_retry_carbon) - result.total_carbon())
            .grams()
            .abs()
            <= 1e-9 * result.total_carbon().grams()
    );
    let horizon_seconds = horizon_days as f64 * 86_400.0;
    assert!(
        (result.goodput_qps() - total_requests / horizon_seconds).abs()
            <= 1e-9 * result.goodput_qps().max(1.0),
        "goodput divides served requests by the horizon"
    );
}
