//! Smoke tests for the workspace wiring: every facade re-export resolves,
//! the crates agree on each other's types across the dependency edges, and
//! the version constant is populated. These tests exist to fail loudly if a
//! crate is dropped from the workspace or a facade re-export is renamed.

use junkyard::battery::SmartChargePolicy;
use junkyard::carbon::cci::CciCalculator;
use junkyard::carbon::ops::{OpUnit, Throughput};
use junkyard::carbon::units::{CarbonIntensity, TimeSpan, Watts};
use junkyard::cluster::presets::ten_phone_prototype;
use junkyard::core::single_device::SingleDeviceStudy;
use junkyard::devices::benchmark::Benchmark;
use junkyard::grid::synth::CaisoSynthesizer;
use junkyard::microsim::app::hotel_reservation;
use junkyard::planner::{Fidelity, Slo};
use junkyard::thermal::PhoneThermalModel;

#[test]
fn version_is_populated() {
    assert!(!junkyard::VERSION.is_empty());
    let mut parts = junkyard::VERSION.split('.');
    assert!(
        parts
            .next()
            .is_some_and(|major| major.parse::<u64>().is_ok()),
        "VERSION should start with a numeric major component, got {:?}",
        junkyard::VERSION
    );
}

#[test]
fn every_facade_module_resolves() {
    // One constructor per re-exported crate; the point is that the paths
    // exist and the inter-crate types line up, not the numbers.
    let cci = CciCalculator::new(OpUnit::Gflop)
        .average_power(Watts::new(2.0))
        .grid(CarbonIntensity::from_grams_per_kwh(257.0))
        .throughput(Throughput::per_second(10.0, OpUnit::Gflop));
    assert!(cci.cci_at(TimeSpan::from_years(1.0)).is_ok());

    let _ = Benchmark::Dijkstra;
    let _ = SmartChargePolicy::paper_default();
    let _ = PhoneThermalModel::pixel_3a();
    let _ = ten_phone_prototype();
    let app = hotel_reservation();
    assert!(!app.services().is_empty());

    let trace = CaisoSynthesizer::new(1, 1).intensity_trace();
    assert!(trace.mean().grams_per_kwh() > 0.0);

    // planner -> fleet/microsim: the SLO and fidelity types resolve and
    // agree with the evaluator layer's expectations.
    let slo = Slo::paper_default();
    assert!(slo.tail_limit_ms() > slo.median_limit_ms());
    assert!(Fidelity::coarse().horizon_days() < Fidelity::fine().horizon_days());
}

#[test]
fn facade_study_layer_drives_the_stack_end_to_end() {
    // core -> devices/carbon: the smallest paper artefact, via the facade
    // only. Exercises the full dependency chain the workspace declares.
    let chart = SingleDeviceStudy::new(Benchmark::Dijkstra).run_paper_devices();
    assert!(!chart.lines().is_empty());
    for line in chart.lines() {
        assert!(line.final_value().is_some());
    }
}
