//! Golden regression pins for the fault-free serving path.
//!
//! PR 7 grows the lifecycle and fleet layers a failure-aware serving
//! path (fault plans, health views, retries, degradation). With faults
//! disabled that machinery must be completely invisible: these tests pin
//! the exact bit patterns two fixed fault-free scenarios produced
//! *before* the fault layer existed, so any accidental perturbation of
//! the default path — a reordered float expression, a changed memo key,
//! a scaled idle-power term — fails loudly rather than drifting the
//! paper's numbers.

use junkyard::carbon::units::{CarbonIntensity, GramsCo2e, TimeSpan, Watts};
use junkyard::devices::battery::BatterySpec;
use junkyard::fleet::lifecycle::{
    CohortDevice, LifecycleConfig, LifecycleResult, LifecycleSim, LifecycleSite,
};
use junkyard::fleet::routing::RoutingPolicy;
use junkyard::fleet::schedule::DiurnalSchedule;
use junkyard::fleet::sim::{FleetConfig, FleetResult, FleetSim};
use junkyard::fleet::site::{FleetSite, GridRegion};
use junkyard::grid::synth::CaisoSynthesizer;
use junkyard::grid::trace::IntensityTrace;
use junkyard::microsim::app::hotel_reservation;
use junkyard::microsim::network::NetworkModel;
use junkyard::microsim::node::NodeSpec;
use junkyard::microsim::placement::Placement;
use junkyard::microsim::sim::Simulation;

fn tiny_sim() -> Simulation {
    let app = hotel_reservation();
    let nodes = vec![NodeSpec::pixel_3a(0), NodeSpec::pixel_3a(1)];
    let placement = Placement::swarm_spread(&app, &nodes, 11).unwrap();
    Simulation::new(app, nodes, placement, NetworkModel::phone_wifi()).unwrap()
}

fn flat_region(grams: f64) -> GridRegion {
    GridRegion::new(
        "flat",
        IntensityTrace::constant(
            CarbonIntensity::from_grams_per_kwh(grams),
            TimeSpan::from_hours(1.0),
            TimeSpan::from_days(1.0),
        ),
    )
}

fn phone_slot(capacity: f64) -> CohortDevice {
    CohortDevice::new(
        "Pixel 3A",
        Watts::new(1.7),
        BatterySpec::pixel_3a(),
        GramsCo2e::from_kilograms(5.5),
        capacity,
    )
    .power(Watts::new(0.8), Watts::new(1.7))
}

fn cohort_site() -> LifecycleSite {
    let trace = CaisoSynthesizer::new(7, 2)
        .step(TimeSpan::from_hours(1.0))
        .intensity_trace();
    LifecycleSite::cohort(
        "cloudlet",
        &tiny_sim(),
        GridRegion::new("caiso", trace),
        vec![phone_slot(400.0), phone_slot(400.0)],
        GramsCo2e::from_kilograms(15.0),
    )
    .overhead_power(Watts::new(2.0))
    .failures(300.0, 4)
    .unwrap()
}

fn leased_site() -> LifecycleSite {
    LifecycleSite::leased("datacenter", &tiny_sim(), flat_region(420.0), 300.0)
        .power(Watts::new(50.0), Watts::new(40.0))
        .embodied(GramsCo2e::from_kilograms(500.0), TimeSpan::from_years(4.0))
}

/// The pinned fault-free lifecycle scenario: a two-phone cohort plus a
/// leased backend, 40 days, two windows per day, carbon-aware routing.
fn lifecycle_scenario() -> LifecycleResult {
    LifecycleSim::new(
        vec![cohort_site(), leased_site()],
        DiurnalSchedule::office_day(500.0),
        RoutingPolicy::carbon_aware(),
        LifecycleConfig::new(1)
            .horizon_days(40)
            .windows_per_day(2)
            .sim_slice_s(1.0)
            .warmup_s(0.0)
            .seed(42),
    )
    .run()
    .unwrap()
}

/// The pinned fault-free fleet scenario: two flat-grid sites under
/// carbon-aware routing, four windows, default server model.
fn fleet_scenario() -> FleetResult {
    let site = |name: &str, grams: f64| {
        FleetSite::new(name, &tiny_sim(), flat_region(grams), 700.0)
            .power(Watts::new(2.0), Watts::new(14.0))
            .embodied(GramsCo2e::from_kilograms(3.0), TimeSpan::from_years(3.0))
    };
    FleetSim::new(
        vec![site("clean", 100.0), site("dirty", 400.0)],
        DiurnalSchedule::office_day(600.0),
        RoutingPolicy::carbon_aware(),
        FleetConfig::new()
            .windows_per_day(4)
            .sim_slice_s(1.0)
            .warmup_s(1.0)
            .seed(42),
    )
    .run()
    .unwrap()
}

/// The exact bit patterns the two scenarios produced before the fault
/// layer existed (captured on the pre-PR tree, release profile).
const LIFECYCLE_REQUESTS_BITS: u64 = 0x41d1_a361_7fff_ffff;
const LIFECYCLE_OPERATIONAL_BITS: u64 = 0x40d4_afbd_afce_4dac;
const LIFECYCLE_EMBODIED_BITS: u64 = 0x40e0_b1a8_203d_ada6;
const LIFECYCLE_WORST_MEDIAN_BITS: u64 = 0x4040_e68e_2427_82ad;
const LIFECYCLE_WORST_TAIL_BITS: u64 = 0x4040_e784_eedd_9b0b;
const LIFECYCLE_WORST_P99_BITS: u64 = 0x4040_eac6_3df7_f030;
const FLEET_REQUESTS_BITS: u64 = 0x4181_ebe4_0000_0000;
const FLEET_OPERATIONAL_BITS: u64 = 0x403e_8155_275c_a32d;
const FLEET_EMBODIED_BITS: u64 = 0x4015_e71e_5040_7b5a;

#[test]
fn fault_free_lifecycle_is_bit_identical_to_pre_fault_layer_outputs() {
    let l = lifecycle_scenario();
    assert_eq!(l.total_requests().to_bits(), LIFECYCLE_REQUESTS_BITS);
    assert_eq!(
        l.total_operational().grams().to_bits(),
        LIFECYCLE_OPERATIONAL_BITS
    );
    assert_eq!(
        l.total_embodied().grams().to_bits(),
        LIFECYCLE_EMBODIED_BITS
    );
    assert_eq!(l.router_declined_requests().to_bits(), 0);
    assert_eq!(l.queue_dropped_requests().to_bits(), 0);
    assert_eq!(l.worst_median_ms().to_bits(), LIFECYCLE_WORST_MEDIAN_BITS);
    assert_eq!(l.worst_tail_ms().to_bits(), LIFECYCLE_WORST_TAIL_BITS);
    assert_eq!(l.worst_p99_ms().to_bits(), LIFECYCLE_WORST_P99_BITS);
    // The new availability accounting must be inert on a fault-free run.
    assert_eq!(l.failed_requests(), 0.0);
    assert_eq!(l.low_priority_shed_requests(), 0.0);
    assert_eq!(l.total_retry_carbon().grams(), 0.0);
    assert_eq!(l.availability(), 1.0);
    assert_eq!(l.downtime_windows(1.0), 0);
    // total_carbon now folds in the (zero) retry carbon — still exact.
    assert_eq!(
        l.total_carbon().grams().to_bits(),
        (f64::from_bits(LIFECYCLE_OPERATIONAL_BITS) + f64::from_bits(LIFECYCLE_EMBODIED_BITS))
            .to_bits()
    );
}

#[test]
fn fault_free_fleet_is_bit_identical_to_pre_fault_layer_outputs() {
    let f = fleet_scenario();
    assert_eq!(f.total_requests().to_bits(), FLEET_REQUESTS_BITS);
    assert_eq!(
        f.total_operational().grams().to_bits(),
        FLEET_OPERATIONAL_BITS
    );
    assert_eq!(f.total_embodied().grams().to_bits(), FLEET_EMBODIED_BITS);
    assert_eq!(f.router_declined_requests().to_bits(), 0);
    assert_eq!(f.queue_dropped_requests().to_bits(), 0);
}

#[test]
fn disabled_fault_machinery_is_bit_identical_too() {
    use junkyard::fleet::faults::{FaultConfig, ResiliencePolicy, RetryPolicy};
    let baseline = lifecycle_scenario();
    let with_disabled_faults = LifecycleSim::new(
        vec![cohort_site(), leased_site()],
        DiurnalSchedule::office_day(500.0),
        RoutingPolicy::carbon_aware(),
        LifecycleConfig::new(1)
            .horizon_days(40)
            .windows_per_day(2)
            .sim_slice_s(1.0)
            .warmup_s(0.0)
            .seed(42),
    )
    .with_faults(FaultConfig::disabled())
    .with_resilience(
        ResiliencePolicy::new()
            .detection_lag_windows(3)
            .retry(RetryPolicy::new(2)),
    )
    .run()
    .unwrap();
    assert_eq!(baseline, with_disabled_faults);
}
