//! Property and regression tests for the observability layer's two core
//! contracts:
//!
//! * **Tracing is free and invisible.** Attaching a recorder never
//!   changes a result: a [`junkyard::obs::NoopRecorder`] run (the plain
//!   `run()` path) is bit-identical to a [`junkyard::obs::TraceRecorder`]
//!   run over the same inputs, for the compiled microsim and the
//!   lifecycle stack alike.
//! * **Traces are worker-count invariant.** The sweep's shard-merged
//!   trace serialises to byte-identical JSONL whether the points ran
//!   serially or fanned out over 2 or 8 workers.
//!
//! Plus the dynamic side of the conservation contract: the
//! [`junkyard::obs::ConservedLedger`] accepts every balanced
//! decomposition and rejects every leak beyond tolerance.

use junkyard::core::resilience_study::ResilienceStudy;
use junkyard::microsim::app::{social_network, SN_COMPOSE_POST};
use junkyard::microsim::network::NetworkModel;
use junkyard::microsim::node::ten_pixel_cloudlet;
use junkyard::microsim::placement::Placement;
use junkyard::microsim::sim::{Simulation, Workload};
use junkyard::microsim::sweep::SweepConfig;
use junkyard::obs::{ConservedLedger, EventKind, LedgerError, TraceRecorder};
use proptest::prelude::*;

fn phone_sim() -> Simulation {
    let app = social_network();
    let nodes = ten_pixel_cloudlet();
    let placement = Placement::swarm_spread(&app, &nodes, 11).unwrap();
    Simulation::new(app, nodes, placement, NetworkModel::phone_wifi()).unwrap()
}

#[test]
fn compiled_run_is_bit_identical_with_and_without_recorder() {
    let compiled = phone_sim().compile();
    let workload = Workload::steady(1_500.0, 2.0, Some(SN_COMPOSE_POST), 42);

    let plain = compiled.run(&workload).unwrap();
    let mut recorder = TraceRecorder::new();
    let traced = compiled.run_with(&workload, &mut recorder).unwrap();

    assert_eq!(plain, traced, "attaching a recorder changed the metrics");
    // And the recorder actually saw the run: every admission plus every
    // completion of the workload, on the simulated-time axis.
    let counts = recorder.counts();
    assert_eq!(
        counts[EventKind::Admit.index()],
        u64::try_from(plain.offered()).unwrap()
    );
    assert!(counts[EventKind::Complete.index()] > 0);
}

#[test]
fn lifecycle_run_is_bit_identical_with_and_without_recorder() {
    // The richest run the stack expresses: correlated faults, retries,
    // hedging and a degradation ladder, all feeding the recorder.
    let sim = ResilienceStudy::quick()
        .mitigated_fleet()
        .expect("the quick fleet builds");
    let plain = sim.run().unwrap();
    let mut recorder = TraceRecorder::new();
    let traced = sim.run_with(&mut recorder).unwrap();

    assert_eq!(plain, traced, "attaching a recorder changed the result");
    let counts = recorder.counts();
    assert!(counts[EventKind::Route.index()] > 0, "no routing recorded");
    assert!(counts[EventKind::Fault.index()] > 0, "no faults recorded");
    // The self-checking ledger closed: a `ledger` event keyed
    // `violation` would mean a conservation identity broke mid-run.
    let violations = recorder
        .events_in_order()
        .filter(|(_, e)| e.kind == EventKind::Ledger && e.key == "violation")
        .count();
    assert_eq!(violations, 0, "the conservation ledger must close");
}

#[test]
fn sweep_trace_is_byte_identical_at_any_worker_count() {
    let compiled = phone_sim().compile();
    let points = vec![400.0, 800.0, 1_200.0, 1_600.0, 2_000.0];

    let mut traces = Vec::new();
    let mut curves = Vec::new();
    for workers in [1usize, 2, 8] {
        let config = SweepConfig::new(points.clone(), 1.5, 0.5)
            .request_type(SN_COMPOSE_POST)
            .parallelism(workers);
        let mut recorder = TraceRecorder::new();
        let sweep = config
            .run_compiled_traced("phones", &compiled, &mut recorder)
            .unwrap();
        assert_eq!(sweep.workers, workers.min(points.len()));
        assert_eq!(sweep.point_events.len(), points.len());
        assert_eq!(sweep.worker_utilisation().len(), sweep.workers);
        traces.push(recorder.to_jsonl());
        curves.push(sweep.curve);
    }

    assert_eq!(traces[0], traces[1], "2-worker trace differs from serial");
    assert_eq!(traces[0], traces[2], "8-worker trace differs from serial");
    assert_eq!(curves[0], curves[1]);
    assert_eq!(curves[0], curves[2]);

    // The traced curve equals the untraced one, too.
    let untraced = SweepConfig::new(points, 1.5, 0.5)
        .request_type(SN_COMPOSE_POST)
        .parallelism(1)
        .run_compiled("phones", &compiled)
        .unwrap();
    assert_eq!(curves[0], untraced);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any steady workload, the traced compiled run is bit-identical
    /// to the plain (noop-recorder) run.
    #[test]
    fn traced_compiled_runs_match_plain_runs(
        qps in 200.0f64..3_000.0,
        seed in 0u64..1_000,
    ) {
        let compiled = phone_sim().compile();
        let workload = Workload::steady(qps, 1.5, Some(SN_COMPOSE_POST), seed);
        let plain = compiled.run(&workload).unwrap();
        let mut recorder = TraceRecorder::new();
        let traced = compiled.run_with(&workload, &mut recorder).unwrap();
        prop_assert_eq!(&plain, &traced);
        prop_assert_eq!(
            recorder.counts()[EventKind::Admit.index()],
            u64::try_from(plain.offered()).unwrap()
        );
    }

    /// Every balanced request decomposition is accepted; perturbing one
    /// leg beyond the tolerance is rejected, and rejected records never
    /// accumulate.
    #[test]
    fn ledger_accepts_balanced_and_rejects_leaky_decompositions(
        served in 0.0f64..1.0e6,
        declined in 0.0f64..1.0e4,
        dropped in 0.0f64..1.0e4,
        shed in 0.0f64..1.0e4,
        failed in 0.0f64..1.0e4,
        leak in 1.0f64..1.0e4,
    ) {
        let offered = served + declined + dropped + shed + failed;
        let mut ledger = ConservedLedger::new();
        ledger
            .record_requests(offered, served, declined, dropped, shed, failed)
            .expect("a balanced decomposition is accepted");
        prop_assert_eq!(ledger.offered(), offered);

        // Leak whole requests off the served leg: rejected, totals
        // untouched.
        let mut broken = ConservedLedger::new();
        let err = broken
            .record_requests(offered + leak, served, declined, dropped, shed, failed)
            .expect_err("a leak beyond tolerance is rejected");
        prop_assert!(matches!(err, LedgerError::Requests { .. }));
        prop_assert_eq!(broken.offered(), 0.0);

        // The carbon identity behaves the same way.
        let mut carbon = ConservedLedger::new();
        carbon
            .record_carbon(6.0 + 3.0 + 1.0, 6.0, 3.0, 1.0)
            .expect("balanced carbon is accepted");
        prop_assert!(carbon.record_carbon(10.0 + leak, 6.0, 3.0, 1.0).is_err());
    }
}
