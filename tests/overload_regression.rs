//! Qualitative-shape regression tests for the overload regime: the
//! microsim's bounded queues must behave like a loss system should.
//!
//! Three pinned properties:
//!
//! 1. The drop fraction is monotonically nondecreasing in offered load.
//! 2. Below the sustainable-throughput knee, nothing is dropped.
//! 3. Finite queues bound the tail: at deep overload, distributed-FCFS
//!    with bounded queues serves its survivors with a far smaller p99
//!    than the same deployment with unbounded queues.

use junkyard::microsim::app::{hotel_reservation, social_network, SN_COMPOSE_POST};
use junkyard::microsim::network::NetworkModel;
use junkyard::microsim::node::ten_pixel_cloudlet;
use junkyard::microsim::placement::Placement;
use junkyard::microsim::sim::{QueueDiscipline, ServerModel, Simulation, Workload};
use junkyard::microsim::sweep::SweepConfig;

fn cloudlet(model: ServerModel) -> Simulation {
    let app = hotel_reservation();
    let nodes = ten_pixel_cloudlet();
    let placement = Placement::swarm_spread(&app, &nodes, 11).unwrap();
    Simulation::new(app, nodes, placement, NetworkModel::phone_wifi())
        .unwrap()
        .with_server_model(model)
}

/// The knee of the unbounded default deployment, from a coarse sweep
/// under the paper's informal SLO (median ≤ 100 ms, tail ≤ 200 ms).
fn knee_qps() -> f64 {
    let sim = cloudlet(ServerModel::new());
    let curve = SweepConfig::new(vec![1_000.0, 2_000.0, 3_000.0, 4_000.0, 5_000.0], 1.5, 0.5)
        .run("baseline", &sim)
        .unwrap();
    curve
        .max_sustainable_qps(100.0, 200.0)
        .expect("the five-point sweep brackets the cloudlet's knee")
}

#[test]
fn drop_fraction_is_nondecreasing_in_offered_load() {
    for discipline in [
        QueueDiscipline::CentralizedFcfs,
        QueueDiscipline::DistributedFcfs,
    ] {
        let sim = cloudlet(
            ServerModel::new()
                .with_discipline(discipline)
                .with_queue_size(Some(16)),
        );
        let mut last = 0.0f64;
        for qps in [500.0, 2_000.0, 4_000.0, 8_000.0, 16_000.0] {
            let metrics = sim.run(&Workload::steady(qps, 1.5, None, 42)).unwrap();
            let fraction = metrics.drop_fraction();
            assert!(
                fraction >= last - 1e-3,
                "{discipline:?}: drop fraction fell from {last} to {fraction} at {qps} qps"
            );
            last = fraction;
        }
        assert!(
            last > 0.5,
            "{discipline:?}: deep overload should shed most work, got {last}"
        );
    }
}

#[test]
fn no_drops_below_the_sustainable_knee() {
    let knee = knee_qps();
    assert!(knee > 1_000.0, "implausible knee {knee}");
    for discipline in [
        QueueDiscipline::CentralizedFcfs,
        QueueDiscipline::DistributedFcfs,
    ] {
        let sim = cloudlet(
            ServerModel::new()
                .with_discipline(discipline)
                .with_queue_size(Some(64)),
        );
        for multiplier in [0.25, 0.5, 0.75] {
            let metrics = sim
                .run(&Workload::steady(multiplier * knee, 1.5, None, 42))
                .unwrap();
            assert_eq!(
                metrics.dropped(),
                0,
                "{discipline:?} dropped below the knee at {multiplier}x ({knee} qps knee)"
            );
        }
        // And sanity: the same deployment does drop past the knee.
        let metrics = sim
            .run(&Workload::steady(3.0 * knee, 1.5, None, 42))
            .unwrap();
        assert!(
            metrics.dropped() > 0,
            "{discipline:?} never dropped at 3x the knee"
        );
    }
}

#[test]
fn finite_queues_bound_the_tail_under_dfcfs() {
    // Compose-post keeps the shared WiFi channel comfortable even at 4x
    // the knee, so the tail is governed by the application queues — the
    // thing the bound actually caps. (At extreme multiples the *network*
    // queue, which is deliberately unbounded, dominates instead.)
    let social = |model: ServerModel| {
        let app = social_network();
        let nodes = ten_pixel_cloudlet();
        let placement = Placement::swarm_spread(&app, &nodes, 11).unwrap();
        Simulation::new(app, nodes, placement, NetworkModel::phone_wifi())
            .unwrap()
            .with_server_model(model)
    };
    let knee = SweepConfig::new(vec![1_000.0, 2_000.0, 3_000.0, 4_000.0, 5_000.0], 1.5, 0.5)
        .request_type(SN_COMPOSE_POST)
        .run("baseline", &social(ServerModel::new()))
        .unwrap()
        .max_sustainable_qps(100.0, 200.0)
        .expect("the five-point sweep brackets the compose-post knee");
    let overload = Workload::steady(4.0 * knee, 1.5, Some(SN_COMPOSE_POST), 42);
    let dfcfs = ServerModel::new().with_discipline(QueueDiscipline::DistributedFcfs);
    let bounded = social(dfcfs.with_queue_size(Some(8)))
        .run(&overload)
        .unwrap();
    let unbounded = social(dfcfs).run(&overload).unwrap();
    let bounded_p99 = bounded.latency_stats().p99_ms().unwrap();
    let unbounded_p99 = unbounded.latency_stats().p99_ms().unwrap();
    assert!(
        bounded_p99 < unbounded_p99 / 2.0,
        "bounded p99 {bounded_p99} ms should be far below unbounded {unbounded_p99} ms"
    );
    assert!(
        bounded_p99 < 200.0,
        "an 8-slot queue cannot hold a {bounded_p99} ms p99"
    );
}
