//! Chaos differential harness: random correlated fault plans thrown at
//! the lifecycle's failure-aware serving path.
//!
//! Three invariants survive arbitrary fault configurations:
//!
//! 1. **Conservation** — everything the schedule offered lands in exactly
//!    one bucket: served + declined + queue-dropped + low-priority shed +
//!    failed.
//! 2. **Determinism** — a faulty run is bit-identical serial or threaded
//!    (the fault plan, health view and resolutions are all serial-pass
//!    artifacts fanned into pre-assigned slots).
//! 3. **Fault-free identity** — with every fault process disabled, the
//!    full resilience machinery produces results bit-identical to a run
//!    that never constructed it; and with a truthful health view
//!    (zero detection lag) nothing ever fails, because the router never
//!    assigns traffic to capacity that is not there.
//!
//! The vendored proptest seeds its RNG from the test name, so this is a
//! fixed-seed suite: every CI run exercises the same fault plans.

use junkyard::carbon::units::{CarbonIntensity, GramsCo2e, TimeSpan, Watts};
use junkyard::devices::battery::BatterySpec;
use junkyard::fleet::faults::{
    DegradationLadder, FaultConfig, FaultPlan, ResiliencePolicy, RetryPolicy,
};
use junkyard::fleet::lifecycle::{
    CohortDevice, LifecycleConfig, LifecycleResult, LifecycleSim, LifecycleSite,
};
use junkyard::fleet::routing::RoutingPolicy;
use junkyard::fleet::schedule::DiurnalSchedule;
use junkyard::fleet::site::GridRegion;
use junkyard::grid::synth::CaisoSynthesizer;
use junkyard::grid::trace::IntensityTrace;
use junkyard::microsim::app::hotel_reservation;
use junkyard::microsim::network::NetworkModel;
use junkyard::microsim::node::NodeSpec;
use junkyard::microsim::placement::Placement;
use junkyard::microsim::sim::Simulation;
use proptest::prelude::*;

fn tiny_sim() -> Simulation {
    let app = hotel_reservation();
    let nodes = vec![NodeSpec::pixel_3a(0), NodeSpec::pixel_3a(1)];
    let placement = Placement::swarm_spread(&app, &nodes, 11).unwrap();
    Simulation::new(app, nodes, placement, NetworkModel::phone_wifi()).unwrap()
}

fn phone_slot(capacity: f64) -> CohortDevice {
    CohortDevice::new(
        "Pixel 3A",
        Watts::new(1.7),
        BatterySpec::pixel_3a(),
        GramsCo2e::from_kilograms(5.5),
        capacity,
    )
    .power(Watts::new(0.8), Watts::new(1.7))
}

fn cohort_site(seed: u64) -> LifecycleSite {
    let trace = CaisoSynthesizer::new(seed, 2)
        .step(TimeSpan::from_hours(1.0))
        .intensity_trace();
    LifecycleSite::cohort(
        "cloudlet",
        &tiny_sim(),
        GridRegion::new("caiso", trace),
        vec![phone_slot(400.0), phone_slot(400.0)],
        GramsCo2e::from_kilograms(15.0),
    )
    .overhead_power(Watts::new(2.0))
    .failures(300.0, 4)
    .unwrap()
}

fn leased_site(capacity: f64) -> LifecycleSite {
    let trace = IntensityTrace::constant(
        CarbonIntensity::from_grams_per_kwh(420.0),
        TimeSpan::from_hours(1.0),
        TimeSpan::from_days(1.0),
    );
    LifecycleSite::leased(
        "datacenter",
        &tiny_sim(),
        GridRegion::new("gas", trace),
        capacity,
    )
    .power(Watts::new(50.0), Watts::new(40.0))
    .embodied(GramsCo2e::from_kilograms(500.0), TimeSpan::from_years(4.0))
}

/// A random-but-bounded fault configuration: every process enabled with
/// rates aggressive enough to strike within the short horizon.
fn fault_config(
    outage_mean: f64,
    firmware_mean: f64,
    firmware_fraction: f64,
    thermal_mean: f64,
) -> FaultConfig {
    FaultConfig::disabled()
        .grid_outages(outage_mean, 2)
        .firmware_batches(firmware_mean, firmware_fraction, 3)
        .thermal_shutdowns(thermal_mean, 1)
}

fn build(
    seed: u64,
    base_qps: f64,
    workers: usize,
    faults: Option<FaultConfig>,
    policy: Option<ResiliencePolicy>,
) -> LifecycleResult {
    let mut sim = LifecycleSim::new(
        vec![cohort_site(seed), leased_site(400.0)],
        DiurnalSchedule::office_day(base_qps),
        RoutingPolicy::carbon_aware(),
        LifecycleConfig::new(1)
            .horizon_days(25)
            .windows_per_day(2)
            .sim_slice_s(1.0)
            .warmup_s(0.0)
            .seed(seed)
            .parallelism(workers),
    );
    if let Some(config) = faults {
        sim = sim.with_faults(config);
    }
    if let Some(policy) = policy {
        sim = sim.with_resilience(policy);
    }
    sim.run().unwrap()
}

/// The conserved-buckets identity, relative tolerance 1e-6 (panics on
/// violation, which proptest reports as a failing case).
fn assert_conserved(result: &LifecycleResult) {
    let offered: f64 = result
        .window_health()
        .iter()
        .map(|h| h.offered())
        .sum::<f64>()
        + result.router_declined_requests();
    let accounted = result.offered_requests();
    assert!(
        (offered - accounted).abs() <= 1e-6 * offered.max(1.0),
        "conservation violated: offered {offered} vs accounted {accounted} \
         (served {}, declined {}, dropped {}, lp-shed {}, failed {})",
        result.total_requests(),
        result.router_declined_requests(),
        result.queue_dropped_requests(),
        result.low_priority_shed_requests(),
        result.failed_requests(),
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Conservation and worker-count determinism hold under arbitrary
    /// fault plans and the full retry/hedge/degradation stack.
    #[test]
    fn chaos_conservation_and_determinism(
        seed in 0u64..1_000,
        base_qps in 300.0f64..900.0,
        outage_mean in 3.0f64..20.0,
        firmware_mean in 3.0f64..20.0,
        firmware_fraction in 0.2f64..0.9,
        thermal_mean in 3.0f64..20.0,
        lag in 0usize..3,
        retries in 1usize..4,
        lp_fraction in 0.0f64..1.0,
        workers in 2usize..7,
    ) {
        let faults = fault_config(outage_mean, firmware_mean, firmware_fraction, thermal_mean);
        let policy = ResiliencePolicy::new()
            .detection_lag_windows(lag)
            .retry(RetryPolicy::new(retries).hedge_to_fallback())
            .degradation(
                DegradationLadder::new()
                    .shed_low_priority(lp_fraction)
                    .brownout(1.2),
            )
            .fallback_site(1);
        let serial = build(seed, base_qps, 1, Some(faults), Some(policy));
        assert_conserved(&serial);
        // Availability bookkeeping is internally consistent.
        prop_assert!((0.0..=1.0).contains(&serial.availability()));
        for rate in serial.window_success_rates() {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&rate), "success rate {rate}");
        }
        if serial.failed_requests() > 0.0 {
            prop_assert!(serial.availability() < 1.0);
        }
        // Differential: the same chaos, threaded, is bit-identical.
        let threaded = build(seed, base_qps, workers, Some(faults), Some(policy));
        prop_assert_eq!(serial, threaded);
    }

    /// Fault-free identity: disabled fault processes plus the whole
    /// resilience stack (minus a fallback, which re-routes planning)
    /// produce bit-identical results to a plain run — and a truthful
    /// health view never fails a request even under real faults.
    #[test]
    fn chaos_fault_free_identity_and_omniscient_router(
        seed in 0u64..1_000,
        base_qps in 300.0f64..900.0,
        outage_mean in 3.0f64..20.0,
        lag in 1usize..3,
        retries in 1usize..4,
    ) {
        let baseline = build(seed, base_qps, 1, None, None);
        let disabled = build(
            seed,
            base_qps,
            1,
            Some(FaultConfig::disabled()),
            Some(
                ResiliencePolicy::new()
                    .detection_lag_windows(lag)
                    .retry(RetryPolicy::new(retries)),
            ),
        );
        prop_assert_eq!(&baseline, &disabled);
        prop_assert_eq!(baseline.failed_requests(), 0.0);
        assert_conserved(&baseline);

        // Real outages, omniscient router: nothing fails because nothing
        // is ever assigned to dead capacity.
        let omniscient = build(
            seed,
            base_qps,
            1,
            Some(FaultConfig::disabled().grid_outages(outage_mean, 2)),
            Some(ResiliencePolicy::new().detection_lag_windows(0)),
        );
        prop_assert_eq!(omniscient.failed_requests(), 0.0);
        assert_conserved(&omniscient);
    }
}

/// The deterministic fault plan itself: bit-identical across calls,
/// different under a different seed, and window-availability consistent
/// with its own event list.
#[test]
fn fault_plans_are_reproducible() {
    let config = FaultConfig::disabled()
        .grid_outages(4.0, 2)
        .firmware_batches(3.0, 0.5, 2);
    let a = FaultPlan::generate(&config, 120, 2, 4, 9);
    let b = FaultPlan::generate(&config, 120, 2, 4, 9);
    assert_eq!(a, b);
    assert_ne!(a, FaultPlan::generate(&config, 120, 2, 4, 10));
    assert!(!a.is_fault_free());
    for event in a.events() {
        assert!(a.availability(event.start_window(), event.site()) < 1.0);
    }
}
