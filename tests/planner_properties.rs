//! Property tests on the planner layer: the search is bit-identical at
//! any worker count (including its cache bookkeeping), cache hits
//! reproduce fresh evaluations exactly, and every frontier point
//! honours the SLO hard constraint.

use junkyard::carbon::units::{CarbonIntensity, TimeSpan};
use junkyard::devices::catalog;
use junkyard::fleet::routing::RoutingPolicy;
use junkyard::fleet::schedule::DiurnalSchedule;
use junkyard::fleet::site::GridRegion;
use junkyard::grid::synth::CaisoSynthesizer;
use junkyard::grid::trace::IntensityTrace;
use junkyard::microsim::app::hotel_reservation;
use junkyard::microsim::network::NetworkModel;
use junkyard::planner::{
    evaluate_batch, search, CohortOption, EvalCache, Fidelity, FleetEvaluator, PlannerSpace,
    SearchConfig, Slo,
};
use proptest::prelude::*;

/// A small planner space over two regions (one diurnal, one flat) and
/// three cohort options, cheap enough to search inside proptest.
fn tiny_space(trace_seed: u64) -> PlannerSpace {
    let pixel = catalog::pixel_3a();
    let diurnal = CaisoSynthesizer::new(trace_seed, 1)
        .step(TimeSpan::from_hours(1.0))
        .intensity_trace();
    let flat = IntensityTrace::constant(
        CarbonIntensity::from_grams_per_kwh(420.0),
        TimeSpan::from_hours(1.0),
        TimeSpan::from_days(1.0),
    );
    PlannerSpace::new(
        vec![
            CohortOption::empty(),
            CohortOption::uniform(pixel.clone(), 2, 300.0),
            CohortOption::uniform(pixel, 4, 300.0),
        ],
        vec![
            GridRegion::new("diurnal", diurnal),
            GridRegion::new("flat", flat),
        ],
    )
    .routings(vec![RoutingPolicy::Static, RoutingPolicy::carbon_aware()])
    .charge_floors(vec![0.25, 0.5])
}

fn evaluator(trace_seed: u64, base_qps: f64, seed: u64) -> FleetEvaluator {
    FleetEvaluator::new(
        tiny_space(trace_seed),
        hotel_reservation(),
        NetworkModel::phone_wifi(),
        DiurnalSchedule::office_day(base_qps),
        seed,
    )
    .failures(500.0)
}

fn config(seed: u64) -> SearchConfig {
    SearchConfig::new()
        .seed(seed)
        .rungs(vec![Fidelity::coarse(), Fidelity::new(3, 2, 1.0, 0.0)])
        .local_search(2, 1, 2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn search_is_bit_identical_serial_vs_threaded(
        seed in 0u64..1_000,
        trace_seed in 1u64..50,
        base_qps in 300.0f64..700.0,
        workers in 2usize..6,
    ) {
        let slo = Slo::new(150.0, 300.0).shed_ceiling(0.05);
        let evaluator = evaluator(trace_seed, base_qps, seed);
        let serial = search(
            evaluator.space(),
            &evaluator,
            &slo,
            &config(seed).parallelism(1),
            &mut EvalCache::new(),
        );
        let threaded = search(
            evaluator.space(),
            &evaluator,
            &slo,
            &config(seed).parallelism(workers),
            &mut EvalCache::new(),
        );
        // The whole outcome — frontier, argmin, rung populations, and
        // even the cache hit/miss counters — must match bit for bit.
        prop_assert_eq!(serial, threaded);
    }

    #[test]
    fn cache_hits_are_bit_identical_to_fresh_evaluations(
        seed in 0u64..1_000,
        trace_seed in 1u64..50,
        cohort_a in 0usize..3,
        cohort_b in 1usize..3,
    ) {
        let evaluator = evaluator(trace_seed, 500.0, seed);
        let candidate = junkyard::planner::CandidateDeployment::new(
            vec![cohort_a, cohort_b], 1, 0, 0, 0,
        );
        let fidelity = Fidelity::coarse();
        // Two independent fresh evaluations agree (purity) …
        let fresh_a = evaluator_eval(&evaluator, &candidate, fidelity);
        let fresh_b = evaluator_eval(&evaluator, &candidate, fidelity);
        prop_assert_eq!(&fresh_a, &fresh_b);
        // … and the cached replay is the same bits with no new runs.
        let mut cache = EvalCache::new();
        let mut fresh_count = 0;
        let first = evaluate_batch(
            &mut cache, &evaluator, std::slice::from_ref(&candidate), fidelity, 1, &mut fresh_count,
        );
        prop_assert_eq!(fresh_count, 1);
        let replay = evaluate_batch(
            &mut cache, &evaluator, std::slice::from_ref(&candidate), fidelity, 1, &mut fresh_count,
        );
        prop_assert_eq!(fresh_count, 1, "replay must be served from the cache");
        prop_assert_eq!(&first, &replay);
        prop_assert_eq!(first[0].clone().unwrap(), fresh_a);
    }

    #[test]
    fn every_frontier_point_satisfies_the_slo(
        seed in 0u64..1_000,
        trace_seed in 1u64..50,
        median_limit in 60.0f64..200.0,
        shed_ceiling in 0.0f64..0.05,
    ) {
        let slo = Slo::new(median_limit, median_limit * 2.0).shed_ceiling(shed_ceiling);
        let evaluator = evaluator(trace_seed, 600.0, seed);
        let outcome = search(
            evaluator.space(),
            &evaluator,
            &slo,
            &config(seed),
            &mut EvalCache::new(),
        );
        for planned in outcome.frontier() {
            let evaluation = planned.evaluation();
            prop_assert!(evaluation.meets(&slo), "{} violates the SLO", planned.label());
            prop_assert!(evaluation.worst_median_ms() <= slo.median_limit_ms());
            prop_assert!(evaluation.worst_tail_ms() <= slo.tail_limit_ms());
            prop_assert!(evaluation.shed_fraction() <= slo.max_shed_fraction() + 1e-12);
            prop_assert!(evaluation.grams_per_request().is_some());
        }
        // The argmin, when present, sits on the frontier.
        if let Some(best) = outcome.best() {
            prop_assert!(outcome.frontier().iter().any(|p| p == best));
        }
    }
}

/// Scores one candidate directly through the [`junkyard::planner::Evaluator`] trait.
fn evaluator_eval(
    evaluator: &FleetEvaluator,
    candidate: &junkyard::planner::CandidateDeployment,
    fidelity: Fidelity,
) -> junkyard::planner::Evaluation {
    use junkyard::planner::Evaluator as _;
    evaluator
        .evaluate(candidate, fidelity)
        .expect("pixel cohorts build and simulate")
}
