//! Property-based tests on the core carbon-accounting invariants, spanning
//! the carbon, devices and cluster crates.

use junkyard::carbon::cci::CciCalculator;
use junkyard::carbon::embodied::{battery_packs_needed, EmbodiedCarbon};
use junkyard::carbon::ops::{OpUnit, Throughput};
use junkyard::carbon::units::{CarbonIntensity, GramsCo2e, TimeSpan, Watts};
use junkyard::devices::power::{LoadProfile, LoadSegment, PowerCurve};
use junkyard::grid::synth::CaisoSynthesizer;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CCI of a reused device is independent of lifetime (no embodied term to
    /// amortise), while a new device's CCI never increases with lifetime.
    #[test]
    fn cci_monotonicity(
        power in 0.5f64..500.0,
        throughput in 0.1f64..1_000.0,
        embodied_kg in 1.0f64..10_000.0,
        months_a in 1.0f64..60.0,
        extra in 1.0f64..60.0,
    ) {
        let grid = CarbonIntensity::from_grams_per_kwh(257.0);
        let reused = CciCalculator::new(OpUnit::Gflop)
            .embodied(EmbodiedCarbon::reused())
            .average_power(Watts::new(power))
            .grid(grid)
            .throughput(Throughput::per_second(throughput, OpUnit::Gflop));
        let fresh = reused.clone().embodied(EmbodiedCarbon::manufactured(
            "new",
            GramsCo2e::from_kilograms(embodied_kg),
        ));
        let short = TimeSpan::from_months(months_a);
        let long = TimeSpan::from_months(months_a + extra);
        let reused_short = reused.cci_at(short).unwrap().grams_per_op();
        let reused_long = reused.cci_at(long).unwrap().grams_per_op();
        prop_assert!((reused_short - reused_long).abs() <= reused_short * 1e-9);
        let fresh_short = fresh.cci_at(short).unwrap().grams_per_op();
        let fresh_long = fresh.cci_at(long).unwrap().grams_per_op();
        prop_assert!(fresh_long <= fresh_short + 1e-12);
        // And the new device is never better than the reused one on the same
        // grid with the same operational profile.
        prop_assert!(fresh_short >= reused_short);
    }

    /// The carbon breakdown's terms always sum to its total and scale
    /// linearly with the grid's carbon intensity.
    #[test]
    fn breakdown_linearity(
        power in 0.5f64..500.0,
        intensity in 1.0f64..1_000.0,
        months in 1.0f64..120.0,
    ) {
        let base = CciCalculator::new(OpUnit::Request)
            .average_power(Watts::new(power))
            .grid(CarbonIntensity::from_grams_per_kwh(intensity))
            .throughput(Throughput::per_second(1.0, OpUnit::Request));
        let doubled = base.clone().grid(CarbonIntensity::from_grams_per_kwh(intensity * 2.0));
        let life = TimeSpan::from_months(months);
        let b = base.breakdown_at(life);
        prop_assert!((b.total().grams() - (b.manufacturing() + b.compute() + b.network()).grams()).abs() < 1e-9);
        let d = doubled.breakdown_at(life);
        prop_assert!((d.compute().grams() - 2.0 * b.compute().grams()).abs() < 1e-6);
    }

    /// Battery pack counting is monotone in lifetime and consistent with the
    /// pack lifetime.
    #[test]
    fn battery_packs_monotone(
        lifetime_months in 0.1f64..120.0,
        pack_months in 1.0f64..48.0,
    ) {
        let packs = battery_packs_needed(
            TimeSpan::from_months(lifetime_months),
            TimeSpan::from_months(pack_months),
        );
        let more_packs = battery_packs_needed(
            TimeSpan::from_months(lifetime_months * 2.0),
            TimeSpan::from_months(pack_months),
        );
        prop_assert!(more_packs >= packs);
        prop_assert!(f64::from(packs) >= lifetime_months / pack_months);
        prop_assert!(f64::from(packs) <= lifetime_months / pack_months + 1.0);
    }

    /// Average power under any valid duty cycle lies between idle and full
    /// load, and is monotone in the duty cycle's average load.
    #[test]
    fn duty_cycle_average_power_is_bounded(
        idle in 0.1f64..10.0,
        span10 in 0.0f64..20.0,
        span50 in 0.0f64..50.0,
        span100 in 0.0f64..100.0,
        busy_fraction in 0.0f64..1.0,
    ) {
        let curve = PowerCurve::from_measurements(
            Watts::new(idle),
            Watts::new(idle + span10),
            Watts::new(idle + span10 + span50),
            Watts::new(idle + span10 + span50 + span100),
        );
        let profile = LoadProfile::new(vec![
            LoadSegment::new(1.0, busy_fraction),
            LoadSegment::new(0.0, 1.0 - busy_fraction),
        ]).unwrap();
        let avg = profile.average_power(curve);
        prop_assert!(avg.value() >= curve.idle().value() - 1e-9);
        prop_assert!(avg.value() <= curve.at_full_load().value() + 1e-9);
    }

    /// The synthetic CAISO generator always hits its calibrated mean and
    /// keeps intensities physical, regardless of seed.
    #[test]
    fn caiso_synthesis_is_calibrated(seed in 0u64..1_000) {
        let trace = CaisoSynthesizer::new(seed, 3).intensity_trace();
        prop_assert!((trace.mean().grams_per_kwh() - 257.0).abs() < 2.0);
        prop_assert!(trace.min().grams_per_kwh() > 0.0);
        prop_assert!(trace.max().grams_per_kwh() < 600.0);
        prop_assert_eq!(trace.day_count(), 3);
    }
}
