//! Cross-crate integration tests: exercise the full pipeline from device
//! catalog through the carbon metric, cluster design, grid traces and the
//! microservice simulator, the way the experiment binaries do.

use junkyard::carbon::units::{CarbonIntensity, TimeSpan};
use junkyard::cluster::presets;
use junkyard::core::charging_study::ChargingStudy;
use junkyard::core::cloudlet_study::{figure9_advantage, CloudletWorkload};
use junkyard::core::cluster_cci::{cloudlet_calculator, ClusterCciStudy};
use junkyard::core::datacenter_study::DatacenterStudy;
use junkyard::core::energy_mix::energy_mix_chart;
use junkyard::core::single_device::{device_calculator, SingleDeviceStudy};
use junkyard::core::tables;
use junkyard::core::thermal_study::run_thermal_study;
use junkyard::devices::benchmark::Benchmark;
use junkyard::devices::catalog;
use junkyard::grid::regime::PowerRegime;

#[test]
fn paper_headline_claim_reused_phones_beat_new_servers() {
    // Contribution (1)/(2): for every benchmark the paper plots, the reused
    // Pixel 3A has lower CCI than a freshly manufactured PowerEdge R740 over
    // a five-year horizon on the California grid.
    let grid = CarbonIntensity::from_grams_per_kwh(257.0);
    for benchmark in Benchmark::CCI_FIGURES {
        let phone = device_calculator(&catalog::pixel_3a(), benchmark, grid, true);
        let server = device_calculator(&catalog::poweredge_r740(), benchmark, grid, false);
        for months in [6.0, 24.0, 60.0] {
            let life = TimeSpan::from_months(months);
            assert!(
                phone.cci_at(life).unwrap().grams_per_op()
                    < server.cci_at(life).unwrap().grams_per_op(),
                "{benchmark} at {months} months"
            );
        }
    }
}

#[test]
fn figure2_and_figure5_charts_are_consistent() {
    // The cluster-level chart must preserve the single-device ordering for
    // the Pixel cloudlet vs the PowerEdge baseline.
    let single = SingleDeviceStudy::new(Benchmark::PdfRender).run_paper_devices();
    let cluster = ClusterCciStudy::new(Benchmark::PdfRender, PowerRegime::CaliforniaMix)
        .months(vec![12.0, 36.0, 60.0])
        .run_paper_cloudlets()
        .unwrap();
    let single_better = single.line("Pixel 3A").unwrap().final_value().unwrap()
        < single
            .line("PowerEdge R740")
            .unwrap()
            .final_value()
            .unwrap();
    let cluster_better = cluster.line("Pixel 3A x54").unwrap().final_value().unwrap()
        < cluster
            .line("PowerEdge R740")
            .unwrap()
            .final_value()
            .unwrap();
    assert_eq!(single_better, cluster_better);
    assert!(single_better);
}

#[test]
fn smart_charging_feeds_into_cluster_cci() {
    // The smart-charging simulation (Figure 4) produces a saving in the same
    // direction as the fixed 7% the cluster analysis assumes, and applying
    // that saving lowers the cloudlet's CCI.
    let outcome = ChargingStudy::new(3).days(8).run();
    let pixel_savings = outcome.outcomes()[0].median_savings_percent();
    assert!(pixel_savings > 0.0);

    let with_sc = cloudlet_calculator(
        &presets::pixel_cloudlet(),
        Benchmark::Dijkstra,
        PowerRegime::CaliforniaMix,
    );
    // Same hardware (plugs included) but without the charging-time shifting.
    let without_shifting = cloudlet_calculator(
        &presets::pixel_cloudlet().smart_charging_savings(0.0),
        Benchmark::Dijkstra,
        PowerRegime::CaliforniaMix,
    );
    let life = TimeSpan::from_years(1.0);
    // Smart charging reduces operational carbon relative to the same
    // hardware charging naively (at one year no battery replacement has
    // happened yet, so the comparison is purely operational).
    assert!(
        with_sc.breakdown_at(life).compute().grams()
            < without_shifting.breakdown_at(life).compute().grams()
    );
}

#[test]
fn thermal_study_supports_the_cloudlet_cooling_assumptions() {
    // The fan count the Section 5.2 presets assume (1-2 COTS fans) follows
    // from the thermal study's measured per-device thermal power.
    let thermal = run_thermal_study();
    let plan = thermal.cloudlet_cooling_plan();
    assert!(plan.fans_needed() <= 2);
    let pixel_cloudlet = presets::pixel_cloudlet();
    let fans_in_preset: u32 = pixel_cloudlet
        .peripherals()
        .iter()
        .filter(|p| p.label() == "server fan")
        .map(|p| p.quantity())
        .sum();
    assert!(fans_in_preset >= 1);
}

#[test]
fn datacenter_and_request_level_analyses_agree_on_the_winner() {
    let datacenter = DatacenterStudy::new();
    for benchmark in [Benchmark::Sgemm, Benchmark::Dijkstra] {
        assert!(datacenter.smartphone_advantage(benchmark).unwrap() > 1.0);
    }
    for workload in CloudletWorkload::ALL {
        let advantage = figure9_advantage(workload, TimeSpan::from_years(3.0)).unwrap();
        assert!(advantage > 5.0, "{}: {advantage}", workload.label());
    }
}

#[test]
fn energy_mix_study_shows_manufacturing_dominates_on_clean_grids() {
    let chart = energy_mix_chart().unwrap();
    let server_california = chart
        .line("[Server] California")
        .unwrap()
        .final_value()
        .unwrap();
    let server_zero = chart
        .line("[Server] Z.Carbon")
        .unwrap()
        .final_value()
        .unwrap();
    // Even with perfectly clean energy the new server keeps a substantial
    // CCI floor from manufacturing — the paper's takeaway (3).
    assert!(server_zero > 0.0);
    assert!(server_zero < server_california);
    let floor_fraction = server_zero / server_california;
    assert!(floor_fraction > 0.2, "manufacturing floor {floor_fraction}");
}

#[test]
fn table_reports_render_for_every_paper_table() {
    assert_eq!(tables::table1().rows().len(), 5);
    assert_eq!(tables::table2().rows().len(), 5);
    let (table3, rf) = tables::table3();
    assert_eq!(table3.rows().len(), 7);
    assert!(rf > 0.8);
    assert_eq!(tables::figure1_charts().len(), 3);
    assert_eq!(DatacenterStudy::new().cci_table().unwrap().rows().len(), 2);
}
