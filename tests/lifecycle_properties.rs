//! Property tests on the lifecycle layer: the multi-year accounting is
//! conservative (per-(year, site) cells sum to the lifetime totals and to
//! the per-day ledger) and the slot-threaded fan-out is deterministic at
//! any worker count.

use junkyard::battery::state::BatteryState;
use junkyard::carbon::units::{CarbonIntensity, GramsCo2e, TimeSpan, Watts};
use junkyard::devices::battery::BatterySpec;
use junkyard::fleet::lifecycle::{
    CohortDevice, LifecycleConfig, LifecycleSim, LifecycleSite, DAYS_PER_YEAR,
};
use junkyard::fleet::routing::RoutingPolicy;
use junkyard::fleet::schedule::DiurnalSchedule;
use junkyard::fleet::site::GridRegion;
use junkyard::grid::synth::CaisoSynthesizer;
use junkyard::grid::trace::IntensityTrace;
use junkyard::microsim::app::hotel_reservation;
use junkyard::microsim::network::NetworkModel;
use junkyard::microsim::node::NodeSpec;
use junkyard::microsim::placement::Placement;
use junkyard::microsim::sim::Simulation;
use proptest::prelude::*;

/// A small two-phone simulation, cheap enough to run inside proptest.
fn tiny_sim() -> Simulation {
    let app = hotel_reservation();
    let nodes = vec![NodeSpec::pixel_3a(0), NodeSpec::pixel_3a(1)];
    let placement = Placement::swarm_spread(&app, &nodes, 11).unwrap();
    Simulation::new(app, nodes, placement, NetworkModel::phone_wifi()).unwrap()
}

fn phone_slot(capacity: f64) -> CohortDevice {
    CohortDevice::new(
        "Pixel 3A",
        Watts::new(1.7),
        BatterySpec::pixel_3a(),
        GramsCo2e::from_kilograms(5.5),
        capacity,
    )
    .power(Watts::new(0.8), Watts::new(1.7))
}

fn cohort_site(seed: u64, devices: usize, capacity: f64) -> LifecycleSite {
    // An hourly two-day diurnal trace keeps each proptest case fast.
    let trace = CaisoSynthesizer::new(seed, 2)
        .step(TimeSpan::from_hours(1.0))
        .intensity_trace();
    LifecycleSite::cohort(
        "cloudlet",
        &tiny_sim(),
        GridRegion::new("caiso", trace),
        (0..devices).map(|_| phone_slot(capacity)).collect(),
        GramsCo2e::from_kilograms(15.0),
    )
    .overhead_power(Watts::new(2.0))
    .failures(300.0, 4)
    .unwrap()
}

fn leased_site(capacity: f64) -> LifecycleSite {
    let trace = IntensityTrace::constant(
        CarbonIntensity::from_grams_per_kwh(420.0),
        TimeSpan::from_hours(1.0),
        TimeSpan::from_days(1.0),
    );
    LifecycleSite::leased(
        "datacenter",
        &tiny_sim(),
        GridRegion::new("gas", trace),
        capacity,
    )
    .power(Watts::new(50.0), Watts::new(40.0))
    .embodied(GramsCo2e::from_kilograms(500.0), TimeSpan::from_years(4.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Per-(year, site) cells sum to the lifetime totals within 1e-9
    /// (relative), and the merged per-day ledger agrees with both.
    #[test]
    fn lifecycle_cells_sum_to_lifetime_totals(
        base_qps in 50.0f64..700.0,
        seed in 0u64..1_000,
        years in 1usize..3,
        carbon_aware in 0u8..2,
    ) {
        let policy = if carbon_aware == 1 {
            RoutingPolicy::carbon_aware()
        } else {
            RoutingPolicy::Static
        };
        let sim = LifecycleSim::new(
            vec![cohort_site(seed, 2, 400.0), leased_site(300.0)],
            DiurnalSchedule::office_day(base_qps),
            policy,
            LifecycleConfig::new(years)
                .windows_per_day(2)
                .sim_slice_s(1.0)
                .warmup_s(0.0)
                .seed(seed),
        );
        let result = sim.run().unwrap();
        prop_assert_eq!(result.cells().len(), years * 2);
        prop_assert_eq!(result.day_ledger().len(), years * DAYS_PER_YEAR);

        // Cells -> totals, associating per site first, then across sites
        // (a different order than the engine's running accumulation).
        let mut requests = 0.0;
        let mut operational = 0.0;
        let mut embodied = 0.0;
        for site in 0..2 {
            let mut site_requests = 0.0;
            let mut site_operational = 0.0;
            let mut site_embodied = 0.0;
            for year in 0..years {
                let cell = result.cell(year, site);
                site_requests += cell.requests();
                site_operational += cell.operational().grams();
                site_embodied += cell.embodied().grams();
                // Each cell's own daily ledger reproduces the cell.
                let daily_requests: f64 = cell.daily().iter().map(|d| d.requests()).sum();
                prop_assert!((daily_requests - cell.requests()).abs()
                    <= 1e-9f64.max(cell.requests().abs() * 1e-9));
            }
            requests += site_requests;
            operational += site_operational;
            embodied += site_embodied;
        }
        let tol = |reference: f64| 1e-9f64.max(reference.abs() * 1e-9);
        prop_assert!((requests - result.total_requests()).abs() <= tol(result.total_requests()));
        prop_assert!(
            (operational - result.total_operational().grams()).abs()
                <= tol(result.total_operational().grams())
        );
        prop_assert!(
            (embodied - result.total_embodied().grams()).abs()
                <= tol(result.total_embodied().grams())
        );

        // The merged day ledger carries the same lifetime totals.
        let ledger_requests: f64 = result.day_ledger().iter().map(|d| d.requests()).sum();
        let ledger_carbon: f64 = result.day_ledger().iter().map(|d| d.carbon().grams()).sum();
        prop_assert!((ledger_requests - result.total_requests()).abs()
            <= tol(result.total_requests()));
        prop_assert!((ledger_carbon - result.total_carbon().grams()).abs()
            <= tol(result.total_carbon().grams()));
    }

    /// Serial and threaded lifecycle runs are bit-identical.
    #[test]
    fn lifecycle_runs_are_identical_across_worker_counts(
        base_qps in 50.0f64..700.0,
        seed in 0u64..1_000,
        workers in 2usize..9,
    ) {
        let run = |parallelism: usize| {
            LifecycleSim::new(
                vec![cohort_site(seed, 2, 400.0), leased_site(300.0)],
                DiurnalSchedule::office_day(base_qps),
                RoutingPolicy::carbon_aware(),
                LifecycleConfig::new(2)
                    .windows_per_day(2)
                    .sim_slice_s(1.0)
                    .warmup_s(0.0)
                    .seed(seed)
                    .parallelism(parallelism),
            )
            .run()
            .unwrap()
        };
        prop_assert_eq!(run(1), run(workers));
    }
}

/// Battery wear in the lifecycle is the same state machine the Figure 4
/// smart-charging simulation steps: a device that cycles its pack a full
/// cycle-life's worth is worn out and replaced, and the replacement is
/// what the lifecycle charges for.
#[test]
fn lifecycle_battery_replacements_track_wear() {
    let mut battery = BatteryState::new_full(BatterySpec::pixel_3a());
    let full = battery.spec().energy().value();
    for _ in 0..2_500 {
        let _ = battery.discharge(Watts::new(full), TimeSpan::from_secs(1.0));
        let _ = battery.charge_from_wall(TimeSpan::from_hours(1.0));
    }
    assert!(battery.is_worn_out());
    battery.replace();
    assert_eq!(battery.replacements(), 1);
    assert!(battery.replacement_carbon().grams() > 0.0);
}
