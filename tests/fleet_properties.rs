//! Property tests on the fleet layer's carbon accounting and routing
//! invariants: the accounting is conservative (per-cell contributions sum
//! to the fleet totals) and the router is capacity-safe (no site is ever
//! assigned more than its declared capacity, shed traffic included in the
//! balance).

use junkyard::carbon::units::{CarbonIntensity, GramsCo2e, TimeSpan, Watts};
use junkyard::fleet::routing::{plan_window, RoutingPolicy};
use junkyard::fleet::schedule::DiurnalSchedule;
use junkyard::fleet::sim::{FleetConfig, FleetSim};
use junkyard::fleet::site::{FleetSite, GridRegion};
use junkyard::grid::synth::CaisoSynthesizer;
use junkyard::grid::trace::IntensityTrace;
use junkyard::microsim::app::hotel_reservation;
use junkyard::microsim::network::NetworkModel;
use junkyard::microsim::node::NodeSpec;
use junkyard::microsim::placement::Placement;
use junkyard::microsim::sim::{QueueDiscipline, ServerModel, Simulation};
use proptest::prelude::*;

/// A small two-phone simulation, cheap enough to run inside proptest.
fn tiny_sim() -> Simulation {
    let app = hotel_reservation();
    let nodes = vec![NodeSpec::pixel_3a(0), NodeSpec::pixel_3a(1)];
    let placement = Placement::swarm_spread(&app, &nodes, 11).unwrap();
    Simulation::new(app, nodes, placement, NetworkModel::phone_wifi()).unwrap()
}

fn flat_site(name: &str, grams: f64, capacity: f64) -> FleetSite {
    let trace = IntensityTrace::constant(
        CarbonIntensity::from_grams_per_kwh(grams),
        TimeSpan::from_hours(1.0),
        TimeSpan::from_days(1.0),
    );
    FleetSite::new(name, &tiny_sim(), GridRegion::new(name, trace), capacity)
        .power(Watts::new(3.0), Watts::new(12.0))
        .embodied(GramsCo2e::from_kilograms(5.0), TimeSpan::from_years(3.0))
}

/// A flat-grid site whose simulation drops at bounded application queues.
fn bounded_site(name: &str, grams: f64, capacity: f64, model: ServerModel) -> FleetSite {
    let trace = IntensityTrace::constant(
        CarbonIntensity::from_grams_per_kwh(grams),
        TimeSpan::from_hours(1.0),
        TimeSpan::from_days(1.0),
    );
    let sim = tiny_sim().with_server_model(model);
    FleetSite::new(name, &sim, GridRegion::new(name, trace), capacity)
        .power(Watts::new(3.0), Watts::new(12.0))
        .embodied(GramsCo2e::from_kilograms(5.0), TimeSpan::from_years(3.0))
}

fn diurnal_site(name: &str, seed: u64, capacity: f64) -> FleetSite {
    let trace = CaisoSynthesizer::new(seed, 1).intensity_trace();
    FleetSite::new(name, &tiny_sim(), GridRegion::new(name, trace), capacity)
        .power(Watts::new(3.0), Watts::new(12.0))
        .embodied(GramsCo2e::from_kilograms(5.0), TimeSpan::from_years(3.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fleet carbon accounting is conservative: summing every cell's
    /// operational and embodied contributions (per site, then across
    /// sites — a different association order than the engine's running
    /// totals) reproduces the fleet totals within 1e-9.
    #[test]
    fn fleet_accounting_is_conservative(
        base_qps in 50.0f64..900.0,
        seed in 0u64..1_000,
        carbon_aware in 0u8..2,
    ) {
        let policy = if carbon_aware == 1 {
            RoutingPolicy::carbon_aware()
        } else {
            RoutingPolicy::Static
        };
        let fleet = FleetSim::new(
            vec![
                diurnal_site("a", seed, 600.0),
                flat_site("b", 400.0, 300.0),
            ],
            DiurnalSchedule::office_day(base_qps),
            policy,
            FleetConfig::new()
                .windows_per_day(4)
                .sim_slice_s(1.0)
                .warmup_s(0.0)
                .seed(seed),
        );
        let result = fleet.run().unwrap();
        let sites = result.site_names().len();
        let mut operational = 0.0;
        let mut embodied = 0.0;
        let mut requests = 0.0;
        for site in 0..sites {
            let site_cells: Vec<_> = result
                .cells()
                .iter()
                .filter(|c| c.site() == site)
                .collect();
            prop_assert_eq!(site_cells.len(), result.windows());
            operational += site_cells.iter().map(|c| c.operational().grams()).sum::<f64>();
            embodied += site_cells.iter().map(|c| c.embodied().grams()).sum::<f64>();
            requests += site_cells.iter().map(|c| c.requests()).sum::<f64>();
        }
        let tol: f64 = 1e-9;
        prop_assert!((operational - result.total_operational().grams()).abs() <= tol.max(result.total_operational().grams() * tol));
        prop_assert!((embodied - result.total_embodied().grams()).abs() <= tol.max(result.total_embodied().grams() * tol));
        prop_assert!((requests - result.total_requests()).abs() <= tol.max(result.total_requests() * tol));
        prop_assert!(
            ((operational + embodied) - result.total_carbon().grams()).abs()
                <= tol.max(result.total_carbon().grams() * tol)
        );
        // Per-cell totals are themselves consistent.
        for cell in result.cells() {
            prop_assert!(
                (cell.carbon().grams() - (cell.operational() + cell.embodied()).grams()).abs()
                    <= tol
            );
        }
    }

    /// The router never assigns more than a site's capacity at any instant
    /// of any window — under either policy, with demand both below and far
    /// beyond the fleet's aggregate capacity — and placed plus shed
    /// traffic always balances the demand.
    #[test]
    fn router_is_capacity_safe(
        base_qps in 10.0f64..5_000.0,
        cap_a in 50.0f64..800.0,
        cap_b in 50.0f64..800.0,
        windows_per_day in 1usize..9,
        carbon_aware in 0u8..2,
        utilization_cap in 0.3f64..1.0,
    ) {
        let policy = if carbon_aware == 1 {
            RoutingPolicy::CarbonAware { utilization_cap }
        } else {
            RoutingPolicy::Static
        };
        let sites = vec![
            flat_site("a", 150.0, cap_a),
            flat_site("b", 450.0, cap_b),
        ];
        let schedule = DiurnalSchedule::office_day(base_qps);
        for window in schedule.windows(windows_per_day) {
            let plan = plan_window(policy, &sites, &window);
            let mut placed_mean = 0.0;
            for (i, site) in sites.iter().enumerate() {
                let (start, end) = plan.shares()[i];
                prop_assert!(start >= 0.0 && end >= 0.0);
                prop_assert!(
                    start <= site.capacity_qps() + 1e-9,
                    "site {i} start {start} over capacity {}",
                    site.capacity_qps()
                );
                prop_assert!(
                    end <= site.capacity_qps() + 1e-9,
                    "site {i} end {end} over capacity {}",
                    site.capacity_qps()
                );
                placed_mean += plan.site_mean_qps(i);
            }
            prop_assert!(
                (placed_mean + plan.shed_mean_qps() - window.mean_qps()).abs()
                    <= 1e-9 * window.mean_qps().max(1.0)
            );
            prop_assert!(plan.shed_mean_qps() >= 0.0);
        }
    }

    /// With bounded application queues, every request the schedule offers
    /// is accounted exactly once — served, router-declined or
    /// queue-dropped — and the fleet's shed total decomposes into its two
    /// components within 1e-9 (relative).
    #[test]
    fn fleet_conserves_offered_demand_under_bounded_queues(
        base_qps in 200.0f64..3_500.0,
        queue_size in 1usize..48,
        cap in 400.0f64..4_000.0,
        seed in 0u64..1_000,
        dfcfs in 0u8..2,
    ) {
        let model = ServerModel::new()
            .with_discipline(if dfcfs == 1 {
                QueueDiscipline::DistributedFcfs
            } else {
                QueueDiscipline::CentralizedFcfs
            })
            .with_queue_size(Some(queue_size));
        let config = FleetConfig::new()
            .windows_per_day(4)
            .sim_slice_s(1.0)
            .warmup_s(0.0)
            .seed(seed);
        let schedule = DiurnalSchedule::office_day(base_qps);
        let offered: f64 = schedule
            .windows(4)
            .iter()
            .map(|w| w.mean_qps() * w.duration().seconds())
            .sum();
        let fleet = FleetSim::new(
            vec![
                bounded_site("a", 150.0, cap, model),
                bounded_site("b", 450.0, cap / 2.0, model),
            ],
            schedule,
            RoutingPolicy::Static,
            config,
        );
        let result = fleet.run().unwrap();
        let accounted = result.total_requests()
            + result.router_declined_requests()
            + result.queue_dropped_requests();
        prop_assert!(
            (accounted - offered).abs() <= 1e-9 * offered.max(1.0),
            "accounted {accounted} vs offered {offered}"
        );
        prop_assert!(
            (result.shed_requests()
                - result.router_declined_requests()
                - result.queue_dropped_requests())
            .abs()
                <= 1e-9 * result.shed_requests().max(1.0)
        );
        prop_assert!(result.router_declined_requests() >= 0.0);
        prop_assert!(result.queue_dropped_requests() >= 0.0);
        // Per-cell accounting: assigned demand = served + dropped.
        for cell in result.cells() {
            prop_assert!(
                (cell.offered_requests() - cell.requests() - cell.dropped_requests()).abs()
                    <= 1e-9 * cell.offered_requests().max(1.0)
            );
            prop_assert!(cell.dropped_requests() >= 0.0);
        }
    }
}

/// The fleet's slot-threading is deterministic: a serial run and runs at
/// several worker counts produce identical results, cell for cell.
#[test]
fn fleet_runs_are_identical_across_worker_counts() {
    let run = |workers: usize| {
        FleetSim::new(
            vec![diurnal_site("a", 7, 500.0), flat_site("b", 380.0, 400.0)],
            DiurnalSchedule::office_day(600.0),
            RoutingPolicy::carbon_aware(),
            FleetConfig::new()
                .windows_per_day(5)
                .sim_slice_s(1.0)
                .warmup_s(0.0)
                .parallelism(workers),
        )
        .run()
        .unwrap()
    };
    let serial = run(1);
    for workers in [2, 3, 8] {
        assert_eq!(serial, run(workers), "worker count {workers}");
    }
}
