//! Determinism and equivalence regression suite for the microsim engines.
//!
//! The compiled hot path ([`junkyard::microsim::compiled::CompiledSim`])
//! must produce **bit-identical** `RunMetrics` to the reference event loop
//! (`Simulation::run_reference`, the pre-refactor semantics) for every
//! seed: same offered count, same per-request latencies in the same order,
//! same utilisation buckets, same event count, same drop counters. These
//! properties drive both engines across randomly generated applications,
//! placements, phased workloads and (discipline × layout × queue bound)
//! server models, pin the threaded sweep layer to its serial baseline,
//! and pin the default model to goldens captured before the overload
//! refactor.

use junkyard::microsim::app::{
    hotel_reservation, social_network, Application, RequestType, ServiceCall, Stage,
    SN_COMPOSE_POST,
};
use junkyard::microsim::network::NetworkModel;
use junkyard::microsim::node::{ten_pixel_cloudlet, NodeSpec};
use junkyard::microsim::placement::Placement;
use junkyard::microsim::service::{ServiceKind, ServiceSpec};
use junkyard::microsim::sim::{
    CoreLayout, Phase, QueueDiscipline, ServerModel, Simulation, Workload,
};
use junkyard::microsim::sweep::SweepConfig;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random but structurally valid application from a seed: 3–10
/// services, 1–3 request types of 1–4 stages with 1–3 calls each, every
/// call referencing a declared service.
fn random_app(seed: u64) -> Application {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_services = 3 + (rng.random::<u32>() % 8) as usize;
    let kinds = [
        ServiceKind::Frontend,
        ServiceKind::Logic,
        ServiceKind::Cache,
        ServiceKind::Storage,
    ];
    let services: Vec<ServiceSpec> = (0..n_services)
        .map(|i| {
            let kind = if i == 0 {
                ServiceKind::Frontend
            } else {
                kinds[(rng.random::<u32>() % 4) as usize]
            };
            ServiceSpec::new(format!("svc-{i}"), kind, 0.05 + rng.random::<f64>() * 0.4)
        })
        .collect();

    let n_types = 1 + (rng.random::<u32>() % 3) as usize;
    let request_types: Vec<RequestType> = (0..n_types)
        .map(|t| {
            let n_stages = 1 + (rng.random::<u32>() % 4) as usize;
            let stages: Vec<Stage> = (0..n_stages)
                .map(|_| {
                    let n_calls = 1 + (rng.random::<u32>() % 3) as usize;
                    Stage::parallel(
                        (0..n_calls)
                            .map(|_| {
                                let target = (rng.random::<u32>() as usize) % n_services;
                                ServiceCall::new(
                                    format!("svc-{target}"),
                                    0.1 + rng.random::<f64>() * 2.5,
                                    100.0 + rng.random::<f64>() * 1_500.0,
                                    100.0 + rng.random::<f64>() * 2_500.0,
                                )
                            })
                            .collect(),
                    )
                })
                .collect();
            RequestType::new(format!("req-{t}"), 0.1 + rng.random::<f64>(), stages)
                .client_cpu_ms(0.1 + rng.random::<f64>())
                .client_response_bytes(200.0 + rng.random::<f64>() * 4_000.0)
        })
        .collect();

    Application::new("random-app", "svc-0", services, request_types)
}

/// Picks a random server model from a seed: either queue discipline,
/// either core layout (dedicated variants with 1–3 network cores) and an
/// unbounded, tiny or moderate per-queue bound.
fn random_server_model(seed: u64) -> ServerModel {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5E4E);
    let discipline = if rng.random::<u32>() % 2 == 0 {
        QueueDiscipline::CentralizedFcfs
    } else {
        QueueDiscipline::DistributedFcfs
    };
    let layout = if rng.random::<u32>() % 2 == 0 {
        CoreLayout::Combined
    } else {
        CoreLayout::Dedicated {
            network_cores: 1 + rng.random::<u32>() % 3,
        }
    };
    let queue_size = match rng.random::<u32>() % 4 {
        0 => None,
        1 => Some(0),
        2 => Some(1 + (rng.random::<u32>() % 8) as usize),
        _ => Some(16 + (rng.random::<u32>() % 112) as usize),
    };
    ServerModel::new()
        .with_discipline(discipline)
        .with_layout(layout)
        .with_queue_size(queue_size)
}

/// A cluster of 2–5 generously sized nodes so every random app fits.
fn random_cluster(seed: u64) -> Vec<NodeSpec> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC1A5);
    let n_nodes = 2 + (rng.random::<u32>() % 4) as usize;
    (0..n_nodes)
        .map(|i| {
            NodeSpec::new(
                format!("node-{i}"),
                2 + rng.random::<u32>() % 7,
                0.4 + rng.random::<f64>() * 1.2,
                4.0 + rng.random::<f64>() * 4.0,
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random app + random placement + steady workload: the compiled engine
    /// reproduces the reference metrics exactly, on both network models.
    #[test]
    fn compiled_engine_matches_reference_on_random_scenarios(
        app_seed in 0u64..1_000_000,
        placement_seed in 0u64..1_000,
        workload_seed in 0u64..1_000_000,
        qps in 50.0f64..1_200.0,
        duration in 0.5f64..1.5,
        wifi in 0u8..2,
    ) {
        let app = random_app(app_seed);
        let nodes = random_cluster(app_seed);
        let placement = Placement::swarm_spread(&app, &nodes, placement_seed).unwrap();
        let network = if wifi == 1 {
            NetworkModel::phone_wifi()
        } else {
            NetworkModel::single_node_loopback()
        };
        let sim = Simulation::new(app, nodes, placement, network).unwrap();
        let workload = Workload::steady(qps, duration, None, workload_seed);
        let reference = sim.run_reference(&workload).unwrap();
        let compiled = sim.run(&workload).unwrap();
        prop_assert_eq!(&reference, &compiled);
        prop_assert_eq!(reference.events_processed(), compiled.events_processed());
    }

    /// Phased workloads (idle gaps, per-phase type restrictions, colocated
    /// clients) on the built-in applications stay bit-identical too.
    #[test]
    fn compiled_engine_matches_reference_on_phased_builtins(
        workload_seed in 0u64..1_000_000,
        qps_a in 100.0f64..1_500.0,
        qps_b in 100.0f64..1_500.0,
        social in 0u8..2,
        colocated in 0u8..2,
    ) {
        let app = if social == 1 { social_network() } else { hotel_reservation() };
        let restricted = if social == 1 { Some(SN_COMPOSE_POST) } else { None };
        let sim = if colocated == 1 {
            let nodes = vec![NodeSpec::c5("c5", 36, 72.0)];
            let placement = Placement::single_node(&app);
            Simulation::new(app, nodes, placement, NetworkModel::single_node_loopback())
                .unwrap()
                .with_colocated_client(true)
        } else {
            let nodes = ten_pixel_cloudlet();
            let placement = Placement::swarm_spread(&app, &nodes, 11).unwrap();
            Simulation::new(app, nodes, placement, NetworkModel::phone_wifi()).unwrap()
        };
        let workload = Workload::phased(
            vec![
                Phase::idle(0.5),
                Phase::new(qps_a, 1.0, None),
                Phase::idle(0.25),
                Phase::new(qps_b, 1.0, restricted),
            ],
            workload_seed,
        );
        let reference = sim.run_reference(&workload).unwrap();
        let compiled = sim.run(&workload).unwrap();
        prop_assert_eq!(reference, compiled);
    }

    /// Time-varying (ramp) phases stay bit-identical too: the compiled
    /// engine's lazy thinning consumes the RNG in the reference order.
    #[test]
    fn compiled_engine_matches_reference_on_ramp_workloads(
        workload_seed in 0u64..1_000_000,
        qps_a in 0.0f64..1_200.0,
        qps_b in 100.0f64..1_500.0,
        social in 0u8..2,
    ) {
        let app = if social == 1 { social_network() } else { hotel_reservation() };
        let restricted = if social == 1 { Some(SN_COMPOSE_POST) } else { None };
        let nodes = ten_pixel_cloudlet();
        let placement = Placement::swarm_spread(&app, &nodes, 11).unwrap();
        let sim = Simulation::new(app, nodes, placement, NetworkModel::phone_wifi()).unwrap();
        let workload = Workload::phased(
            vec![
                Phase::ramp(qps_a, qps_b, 1.0, None),
                Phase::idle(0.25),
                Phase::ramp(qps_b, qps_a, 1.0, restricted),
            ],
            workload_seed,
        );
        let reference = sim.run_reference(&workload).unwrap();
        let compiled = sim.run(&workload).unwrap();
        prop_assert_eq!(reference, compiled);
    }

    /// The differential overload harness: random (discipline × layout ×
    /// queue bound) server models over random applications, at loads from
    /// light to deep overload. The engines must agree on the *full*
    /// `RunMetrics` — including per-node drop counters and dropped-arrival
    /// lists — and every run must conserve work at both the call level
    /// (arrived == served + dropped per fleet) and the request level
    /// (offered == completed + dropped; the event loop drains fully).
    #[test]
    fn compiled_engine_matches_reference_under_random_server_models(
        app_seed in 0u64..1_000_000,
        model_seed in 0u64..1_000_000,
        workload_seed in 0u64..1_000_000,
        qps in 100.0f64..6_000.0,
        builtin in 0u8..3,
    ) {
        let (app, restricted) = match builtin {
            0 => (social_network(), Some(SN_COMPOSE_POST)),
            1 => (hotel_reservation(), None),
            _ => (random_app(app_seed), None),
        };
        let (nodes, placement_seed) = if builtin < 2 {
            (ten_pixel_cloudlet(), 11)
        } else {
            (random_cluster(app_seed), app_seed % 1_000)
        };
        let placement = Placement::swarm_spread(&app, &nodes, placement_seed).unwrap();
        let model = random_server_model(model_seed);
        let sim = Simulation::new(app, nodes, placement, NetworkModel::phone_wifi())
            .unwrap()
            .with_server_model(model);
        let workload = Workload::steady(qps, 1.0, restricted, workload_seed);
        let reference = sim.run_reference(&workload).unwrap();
        let compiled = sim.run(&workload).unwrap();
        prop_assert_eq!(&reference, &compiled);

        let arrived: u64 = reference.queue_stats().iter().map(|s| s.calls_arrived()).sum();
        let served: u64 = reference.queue_stats().iter().map(|s| s.calls_served()).sum();
        let dropped: u64 = reference.queue_stats().iter().map(|s| s.dropped()).sum();
        prop_assert_eq!(arrived, served + dropped);
        prop_assert_eq!(
            reference.offered(),
            reference.completions().len() + reference.dropped()
        );
        if model.queue_size().is_none() {
            prop_assert_eq!(reference.dropped(), 0);
        }
    }

    /// The threaded sweep produces the same curve as a serial sweep, in the
    /// same point order, for any worker count.
    #[test]
    fn threaded_sweeps_match_serial_sweeps(
        seed in 0u64..100_000,
        workers in 2usize..6,
        decorrelate in 0u8..2,
    ) {
        let app = hotel_reservation();
        let nodes = ten_pixel_cloudlet();
        let placement = Placement::swarm_spread(&app, &nodes, 11).unwrap();
        let sim = Simulation::new(app, nodes, placement, NetworkModel::phone_wifi()).unwrap();
        let mut config = SweepConfig::new(vec![300.0, 800.0, 1_300.0, 1_800.0, 2_300.0], 1.0, 0.5)
            .seed(seed);
        if decorrelate == 1 {
            config = config.decorrelated_seeds();
        }
        let serial = config.clone().parallelism(1).run("hotel", &sim).unwrap();
        let threaded = config.parallelism(workers).run("hotel", &sim).unwrap();
        prop_assert_eq!(serial, threaded);
    }
}

/// The default server model (unbounded centralized FCFS, combined cores)
/// reproduces the exact pre-overload-refactor results: same offered count,
/// same event count, bit-identical latency percentiles, nothing dropped.
/// These constants were captured on the engine before queue disciplines,
/// core layouts and bounded queues existed; if this test fails, the
/// refactor changed default behaviour.
#[test]
fn default_model_reproduces_pre_overload_goldens() {
    let app = social_network();
    let nodes = ten_pixel_cloudlet();
    let placement = Placement::swarm_spread(&app, &nodes, 11).unwrap();
    let sim = Simulation::new(app, nodes, placement, NetworkModel::phone_wifi()).unwrap();
    let workload = Workload::phased(
        vec![
            Phase::new(900.0, 2.0, Some(SN_COMPOSE_POST)),
            Phase::ramp(200.0, 1_100.0, 1.5, None),
        ],
        77,
    );
    let metrics = sim.run(&workload).unwrap();
    assert_eq!(metrics, sim.run_reference(&workload).unwrap());
    let stats = metrics.latency_stats();
    assert_eq!(metrics.offered(), 2_810);
    assert_eq!(metrics.events_processed(), 127_545);
    assert_eq!(
        stats.median_ms().map(f64::to_bits),
        Some(4_630_063_251_449_807_189)
    );
    assert_eq!(
        stats.tail_ms().map(f64::to_bits),
        Some(4_630_072_026_210_878_201)
    );
    assert_eq!(metrics.dropped(), 0);
    assert!(metrics.queue_stats().iter().all(|s| s.dropped() == 0));
}

/// The headline determinism guarantee, spelled out: two runs of the same
/// seed produce equal metrics, through both engines, and the engines agree
/// with each other.
#[test]
fn runs_are_deterministic_and_engines_agree() {
    let app = social_network();
    let nodes = ten_pixel_cloudlet();
    let placement = Placement::swarm_spread(&app, &nodes, 11).unwrap();
    let sim = Simulation::new(app, nodes, placement, NetworkModel::phone_wifi()).unwrap();
    let workload = Workload::steady(900.0, 2.0, Some(SN_COMPOSE_POST), 77);
    let a = sim.run(&workload).unwrap();
    let b = sim.run(&workload).unwrap();
    let reference = sim.run_reference(&workload).unwrap();
    assert_eq!(a, b);
    assert_eq!(a, reference);
    assert!(a.events_processed() > 0);
}
