//! Determinism and equivalence regression suite for the microsim engines.
//!
//! The compiled hot path ([`junkyard::microsim::compiled::CompiledSim`])
//! must produce **bit-identical** `RunMetrics` to the reference event loop
//! (`Simulation::run_reference`, the pre-refactor semantics) for every
//! seed: same offered count, same per-request latencies in the same order,
//! same utilisation buckets, same event count. These properties drive both
//! engines across randomly generated applications, placements and phased
//! workloads, and pin the threaded sweep layer to its serial baseline.

use junkyard::microsim::app::{
    hotel_reservation, social_network, Application, RequestType, ServiceCall, Stage,
    SN_COMPOSE_POST,
};
use junkyard::microsim::network::NetworkModel;
use junkyard::microsim::node::{ten_pixel_cloudlet, NodeSpec};
use junkyard::microsim::placement::Placement;
use junkyard::microsim::service::{ServiceKind, ServiceSpec};
use junkyard::microsim::sim::{Phase, Simulation, Workload};
use junkyard::microsim::sweep::SweepConfig;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random but structurally valid application from a seed: 3–10
/// services, 1–3 request types of 1–4 stages with 1–3 calls each, every
/// call referencing a declared service.
fn random_app(seed: u64) -> Application {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_services = 3 + (rng.random::<u32>() % 8) as usize;
    let kinds = [
        ServiceKind::Frontend,
        ServiceKind::Logic,
        ServiceKind::Cache,
        ServiceKind::Storage,
    ];
    let services: Vec<ServiceSpec> = (0..n_services)
        .map(|i| {
            let kind = if i == 0 {
                ServiceKind::Frontend
            } else {
                kinds[(rng.random::<u32>() % 4) as usize]
            };
            ServiceSpec::new(format!("svc-{i}"), kind, 0.05 + rng.random::<f64>() * 0.4)
        })
        .collect();

    let n_types = 1 + (rng.random::<u32>() % 3) as usize;
    let request_types: Vec<RequestType> = (0..n_types)
        .map(|t| {
            let n_stages = 1 + (rng.random::<u32>() % 4) as usize;
            let stages: Vec<Stage> = (0..n_stages)
                .map(|_| {
                    let n_calls = 1 + (rng.random::<u32>() % 3) as usize;
                    Stage::parallel(
                        (0..n_calls)
                            .map(|_| {
                                let target = (rng.random::<u32>() as usize) % n_services;
                                ServiceCall::new(
                                    format!("svc-{target}"),
                                    0.1 + rng.random::<f64>() * 2.5,
                                    100.0 + rng.random::<f64>() * 1_500.0,
                                    100.0 + rng.random::<f64>() * 2_500.0,
                                )
                            })
                            .collect(),
                    )
                })
                .collect();
            RequestType::new(format!("req-{t}"), 0.1 + rng.random::<f64>(), stages)
                .client_cpu_ms(0.1 + rng.random::<f64>())
                .client_response_bytes(200.0 + rng.random::<f64>() * 4_000.0)
        })
        .collect();

    Application::new("random-app", "svc-0", services, request_types)
}

/// A cluster of 2–5 generously sized nodes so every random app fits.
fn random_cluster(seed: u64) -> Vec<NodeSpec> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC1A5);
    let n_nodes = 2 + (rng.random::<u32>() % 4) as usize;
    (0..n_nodes)
        .map(|i| {
            NodeSpec::new(
                format!("node-{i}"),
                2 + rng.random::<u32>() % 7,
                0.4 + rng.random::<f64>() * 1.2,
                4.0 + rng.random::<f64>() * 4.0,
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random app + random placement + steady workload: the compiled engine
    /// reproduces the reference metrics exactly, on both network models.
    #[test]
    fn compiled_engine_matches_reference_on_random_scenarios(
        app_seed in 0u64..1_000_000,
        placement_seed in 0u64..1_000,
        workload_seed in 0u64..1_000_000,
        qps in 50.0f64..1_200.0,
        duration in 0.5f64..1.5,
        wifi in 0u8..2,
    ) {
        let app = random_app(app_seed);
        let nodes = random_cluster(app_seed);
        let placement = Placement::swarm_spread(&app, &nodes, placement_seed).unwrap();
        let network = if wifi == 1 {
            NetworkModel::phone_wifi()
        } else {
            NetworkModel::single_node_loopback()
        };
        let sim = Simulation::new(app, nodes, placement, network).unwrap();
        let workload = Workload::steady(qps, duration, None, workload_seed);
        let reference = sim.run_reference(&workload).unwrap();
        let compiled = sim.run(&workload).unwrap();
        prop_assert_eq!(&reference, &compiled);
        prop_assert_eq!(reference.events_processed(), compiled.events_processed());
    }

    /// Phased workloads (idle gaps, per-phase type restrictions, colocated
    /// clients) on the built-in applications stay bit-identical too.
    #[test]
    fn compiled_engine_matches_reference_on_phased_builtins(
        workload_seed in 0u64..1_000_000,
        qps_a in 100.0f64..1_500.0,
        qps_b in 100.0f64..1_500.0,
        social in 0u8..2,
        colocated in 0u8..2,
    ) {
        let app = if social == 1 { social_network() } else { hotel_reservation() };
        let restricted = if social == 1 { Some(SN_COMPOSE_POST) } else { None };
        let sim = if colocated == 1 {
            let nodes = vec![NodeSpec::c5("c5", 36, 72.0)];
            let placement = Placement::single_node(&app);
            Simulation::new(app, nodes, placement, NetworkModel::single_node_loopback())
                .unwrap()
                .with_colocated_client(true)
        } else {
            let nodes = ten_pixel_cloudlet();
            let placement = Placement::swarm_spread(&app, &nodes, 11).unwrap();
            Simulation::new(app, nodes, placement, NetworkModel::phone_wifi()).unwrap()
        };
        let workload = Workload::phased(
            vec![
                Phase::idle(0.5),
                Phase::new(qps_a, 1.0, None),
                Phase::idle(0.25),
                Phase::new(qps_b, 1.0, restricted),
            ],
            workload_seed,
        );
        let reference = sim.run_reference(&workload).unwrap();
        let compiled = sim.run(&workload).unwrap();
        prop_assert_eq!(reference, compiled);
    }

    /// Time-varying (ramp) phases stay bit-identical too: the compiled
    /// engine's lazy thinning consumes the RNG in the reference order.
    #[test]
    fn compiled_engine_matches_reference_on_ramp_workloads(
        workload_seed in 0u64..1_000_000,
        qps_a in 0.0f64..1_200.0,
        qps_b in 100.0f64..1_500.0,
        social in 0u8..2,
    ) {
        let app = if social == 1 { social_network() } else { hotel_reservation() };
        let restricted = if social == 1 { Some(SN_COMPOSE_POST) } else { None };
        let nodes = ten_pixel_cloudlet();
        let placement = Placement::swarm_spread(&app, &nodes, 11).unwrap();
        let sim = Simulation::new(app, nodes, placement, NetworkModel::phone_wifi()).unwrap();
        let workload = Workload::phased(
            vec![
                Phase::ramp(qps_a, qps_b, 1.0, None),
                Phase::idle(0.25),
                Phase::ramp(qps_b, qps_a, 1.0, restricted),
            ],
            workload_seed,
        );
        let reference = sim.run_reference(&workload).unwrap();
        let compiled = sim.run(&workload).unwrap();
        prop_assert_eq!(reference, compiled);
    }

    /// The threaded sweep produces the same curve as a serial sweep, in the
    /// same point order, for any worker count.
    #[test]
    fn threaded_sweeps_match_serial_sweeps(
        seed in 0u64..100_000,
        workers in 2usize..6,
        decorrelate in 0u8..2,
    ) {
        let app = hotel_reservation();
        let nodes = ten_pixel_cloudlet();
        let placement = Placement::swarm_spread(&app, &nodes, 11).unwrap();
        let sim = Simulation::new(app, nodes, placement, NetworkModel::phone_wifi()).unwrap();
        let mut config = SweepConfig::new(vec![300.0, 800.0, 1_300.0, 1_800.0, 2_300.0], 1.0, 0.5)
            .seed(seed);
        if decorrelate == 1 {
            config = config.decorrelated_seeds();
        }
        let serial = config.clone().parallelism(1).run("hotel", &sim).unwrap();
        let threaded = config.parallelism(workers).run("hotel", &sim).unwrap();
        prop_assert_eq!(serial, threaded);
    }
}

/// The headline determinism guarantee, spelled out: two runs of the same
/// seed produce equal metrics, through both engines, and the engines agree
/// with each other.
#[test]
fn runs_are_deterministic_and_engines_agree() {
    let app = social_network();
    let nodes = ten_pixel_cloudlet();
    let placement = Placement::swarm_spread(&app, &nodes, 11).unwrap();
    let sim = Simulation::new(app, nodes, placement, NetworkModel::phone_wifi()).unwrap();
    let workload = Workload::steady(900.0, 2.0, Some(SN_COMPOSE_POST), 77);
    let a = sim.run(&workload).unwrap();
    let b = sim.run(&workload).unwrap();
    let reference = sim.run_reference(&workload).unwrap();
    assert_eq!(a, b);
    assert_eq!(a, reference);
    assert!(a.events_processed() > 0);
}
