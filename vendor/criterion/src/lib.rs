//! Offline stand-in for the `criterion` crate (0.5 API surface).
//!
//! Implements the subset this workspace's benches use — [`Criterion`],
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`criterion_group!`] and [`criterion_main!`] — as a
//! plain timed-iteration harness: each benchmark runs a short warm-up, then
//! `sample_size` timed batches, and prints the mean wall-clock time per
//! iteration. No statistics, plots or baselines.
//!
//! ```
//! use criterion::Criterion;
//!
//! let mut c = Criterion::default();
//! c.bench_function("add", |b| b.iter(|| std::hint::black_box(1 + 1)));
//! ```

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], mirroring `criterion::black_box`.
pub use std::hint::black_box;

/// Entry point of the harness, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(id);
        self
    }

    /// Opens a named group of benchmarks sharing configuration.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            sample_size: None,
        }
    }
}

/// A group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample size for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut b = Bencher {
            samples: Vec::with_capacity(sample_size),
            sample_size,
        };
        f(&mut b);
        b.report(id);
        self
    }

    /// Ends the group. (Upstream consumes `self`; kept for API parity.)
    pub fn finish(self) {}
}

/// Timing context handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, running one warm-up call then `sample_size` timed
    /// calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("  {id}: no samples recorded");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        println!("  {id}: mean {mean:?} over {} samples", self.samples.len());
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` function, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0usize;
        let mut c = Criterion::default();
        c.sample_size(3)
            .bench_function("counted", |b| b.iter(|| calls += 1));
        // One warm-up call plus three timed samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn group_sample_size_overrides_default() {
        let mut calls = 0usize;
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("counted", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 3);
    }
}
