//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! Provides exactly what the workspace uses: a deterministic, seedable
//! [`rngs::StdRng`] (SplitMix64 core), the [`Rng::random`] method for `f64`
//! and the unsigned integer types, and [`seq::SliceRandom::shuffle`]
//! (Fisher–Yates).
//!
//! The generator is *not* the upstream ChaCha12 `StdRng`, so sequences
//! differ from real `rand` — but every consumer in this workspace only
//! relies on determinism-per-seed and uniformity, both of which SplitMix64
//! delivers.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let x: f64 = rng.random();
//! assert!((0.0..1.0).contains(&x));
//! // Same seed, same sequence.
//! assert_eq!(StdRng::seed_from_u64(7).random::<f64>(), x);
//! ```

#![forbid(unsafe_code)]

/// A source of random `u64`s. Object-safe core that [`Rng`] builds on.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from an RNG's output.
///
/// Stands in for `rand`'s `StandardUniform` distribution: `f64` samples
/// uniformly from `[0, 1)`, integer types take the raw bits.
pub trait UniformSample {
    /// Draws one value from `rng`.
    fn sample(rng: &mut impl RngCore) -> Self;
}

impl UniformSample for f64 {
    fn sample(rng: &mut impl RngCore) -> Self {
        // 53 high bits -> uniform in [0, 1), the standard conversion.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for f32 {
    fn sample(rng: &mut impl RngCore) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl UniformSample for u64 {
    fn sample(rng: &mut impl RngCore) -> Self {
        rng.next_u64()
    }
}

impl UniformSample for u32 {
    fn sample(rng: &mut impl RngCore) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl UniformSample for usize {
    fn sample(rng: &mut impl RngCore) -> Self {
        rng.next_u64() as usize
    }
}

impl UniformSample for bool {
    fn sample(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a uniform value of type `T` (the 0.9 spelling of `gen`).
    fn random<T: UniformSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples an index uniformly from `[0, bound)`. Panics if `bound == 0`.
    fn random_index(&mut self, bound: usize) -> usize
    where
        Self: Sized,
    {
        assert!(bound > 0, "cannot sample from an empty range");
        // Multiply-shift bounded sampling; bias is negligible for the
        // slice lengths this workspace shuffles.
        (((self.next_u64() >> 32) * bound as u64) >> 32) as usize
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of RNGs from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (SplitMix64).
    ///
    /// Stands in for `rand::rngs::StdRng`; sequences differ from upstream
    /// but are uniform and fully determined by the seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood): passes BigCrush, one u64 of
            // state, ideal for a vendored stand-in.
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extension trait providing an in-place shuffle.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_index(i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn f64_is_uniform_unit_interval() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn seeding_is_deterministic() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(9);
            (0..8).map(|_| r.random::<u64>()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(9);
            (0..8).map(|_| r.random::<u64>()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut rng = StdRng::seed_from_u64(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seeded shuffle left the slice untouched");
    }
}
