//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//! header), [`ProptestConfig::with_cases`], half-open range strategies over
//! floats and integers, and [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Inputs are drawn deterministically from a SplitMix64 generator seeded by
//! the test's name, so runs are reproducible. There is no shrinking: a
//! failing case reports the assertion message directly.
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(32))]
//!
//!     // In a test module this would also carry `#[test]`.
//!     fn addition_commutes(a in 0.0f64..100.0, b in 0.0f64..100.0) {
//!         prop_assert!((a + b - (b + a)).abs() < 1e-12);
//!     }
//! }
//!
//! addition_commutes();
//! ```

#![forbid(unsafe_code)]

use std::ops::Range;

/// Per-`proptest!` block configuration, mirroring
/// `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of input tuples sampled per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` sampled inputs per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic SplitMix64 generator backing input sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a hash).
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of sampled test inputs, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value. `case` is the 0-based case index; early cases pin
    /// range boundaries so edge values are always exercised.
    fn sample(&self, rng: &mut TestRng, case: u32) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng, case: u32) -> f64 {
        debug_assert!(self.start < self.end, "empty f64 strategy range");
        match case {
            // Pin the boundaries first, like proptest's bias toward edges.
            0 => self.start,
            1 => f64_just_below(self.end, self.start),
            _ => self.start + rng.unit_f64() * (self.end - self.start),
        }
    }
}

/// Largest representable value below `end` that is still >= `start`.
fn f64_just_below(end: f64, start: f64) -> f64 {
    let below = end - (end - start) * 1e-12;
    if below < end {
        below
    } else {
        start
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng, case: u32) -> $t {
                assert!(self.start < self.end, "empty integer strategy range");
                let len = (self.end - self.start) as u64;
                match case {
                    0 => self.start,
                    1 => self.end - 1,
                    _ => self.start + (rng.next_u64() % len) as $t,
                }
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng, case: u32) -> $t {
                assert!(self.start < self.end, "empty integer strategy range");
                let len = (self.end as i128 - self.start as i128) as u128;
                match case {
                    0 => self.start,
                    1 => self.end - 1,
                    _ => {
                        let offset = (u128::from(rng.next_u64()) % len) as i128;
                        (self.start as i128 + offset) as $t
                    }
                }
            }
        }
    )*};
}

impl_signed_strategy!(i8, i16, i32, i64, isize);

/// Asserts a condition inside a property test, mirroring `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test, mirroring `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Declares property tests, mirroring `proptest::proptest!`.
///
/// Each `fn name(arg in strategy, ...) { body }` item expands to a zero-arg
/// test that samples the configured number of input tuples and runs the
/// body once per tuple.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng, case);)+
                $body
            }
        }
    )*};
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_range_pins_boundaries_then_samples_inside() {
        let strat = 1.0f64..10.0;
        let mut rng = TestRng::from_name("t");
        assert_eq!(strat.sample(&mut rng, 0), 1.0);
        assert!(strat.sample(&mut rng, 1) < 10.0);
        for case in 2..200 {
            let x = strat.sample(&mut rng, case);
            assert!((1.0..10.0).contains(&x));
        }
    }

    #[test]
    fn int_range_stays_in_bounds() {
        let strat = 5u64..8;
        let mut rng = TestRng::from_name("t");
        assert_eq!(strat.sample(&mut rng, 0), 5);
        assert_eq!(strat.sample(&mut rng, 1), 7);
        for case in 2..100 {
            assert!((5..8).contains(&strat.sample(&mut rng, case)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself works end-to-end.
        #[test]
        fn macro_expands_and_runs(x in 0.0f64..1.0, n in 1u32..10) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            prop_assert_eq!(n, n);
        }
    }
}
