//! Offline stand-in for the `serde` crate.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as a trait
//! marker (no wire format is produced anywhere), so the traits here are
//! blanket-implemented for every type and the derives (re-exported from
//! `serde_derive` under the `derive` feature) expand to nothing.
//!
//! ```
//! use serde::{Deserialize, Serialize};
//!
//! #[derive(Serialize, Deserialize)]
//! struct Reading {
//!     grams_per_kwh: f64,
//! }
//!
//! fn assert_serializable<T: Serialize>(_: &T) {}
//! assert_serializable(&Reading { grams_per_kwh: 257.0 });
//! ```

#![forbid(unsafe_code)]

/// Marker trait standing in for `serde::Serialize`.
///
/// Blanket-implemented for all types: the workspace only ever uses it as a
/// bound, never to produce bytes.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`.
///
/// Carries the same `'de` lifetime parameter as the real trait so bounds
/// written against upstream serde keep compiling.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Stand-in for `serde::de`, re-exporting the owned-deserialization marker.
pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

/// Stand-in for `serde::ser`.
pub mod ser {
    pub use super::Serialize;
}
