//! Offline stand-in for `serde_derive`.
//!
//! The sibling `serde` stand-in blanket-implements its marker traits for
//! every type, so these derives only need to (a) exist and (b) swallow
//! `#[serde(...)]` helper attributes. They expand to nothing.

use proc_macro::TokenStream;

/// No-op replacement for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
